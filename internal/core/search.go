package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"graphitti/internal/agraph"
	"graphitti/internal/trace"
	"graphitti/internal/xmldoc"
	"graphitti/internal/xquery"
)

// searchParallelThreshold is the collection size below which SearchContents
// stays serial: fan-out overhead beats the scan for tiny collections.
const searchParallelThreshold = 64

// cancelCheckStride bounds how many documents a search worker evaluates
// between context checks.
const cancelCheckStride = 64

// SearchContents evaluates a path-expression query against every
// annotation content document and returns the annotations for which the
// result is truthy (a non-empty node set, true boolean, non-empty string
// or non-zero number). This is the paper's "collection-searching
// operations … performed using standard XQuery".
func (v *View) SearchContents(expr string) ([]*Annotation, error) {
	return v.SearchContentsCtx(context.Background(), expr)
}

// SearchContentsCtx is SearchContents with cancellation. The scan fans
// out across GOMAXPROCS workers over contiguous ID ranges and merges the
// per-range results in range order, so the output is byte-identical to a
// serial scan. The first evaluation error (or a context cancellation)
// stops all workers.
func (v *View) SearchContentsCtx(ctx context.Context, expr string) ([]*Annotation, error) {
	start := time.Now()
	if v.m != nil { // zero-value views have no bound metric set
		defer func() { v.m.searchSeconds.Observe(time.Since(start).Seconds()) }()
	}
	sp := trace.FromContext(ctx).StartChild("search")
	defer sp.Finish()
	q, err := xquery.Compile(expr)
	if err != nil {
		return nil, err
	}
	anns := v.Annotations() // ascending ID order
	workers := runtime.GOMAXPROCS(0)
	if workers > len(anns)/(searchParallelThreshold/2) {
		workers = len(anns) / (searchParallelThreshold / 2)
	}
	if workers <= 1 {
		return searchChunk(ctx, q, expr, anns)
	}

	// Contiguous chunks keep the merge deterministic: concatenating the
	// per-chunk hits in chunk order reproduces the serial (ID) order.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunkSize := (len(anns) + workers - 1) / workers
	results := make([][]*Annotation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunkSize
		hi := lo + chunkSize
		if hi > len(anns) {
			hi = len(anns)
		}
		wg.Add(1)
		go func(w int, chunk []*Annotation) {
			defer wg.Done()
			hits, err := searchChunk(cctx, q, expr, chunk)
			if err != nil {
				errs[w] = err
				cancel() // stop the other workers promptly
				return
			}
			results[w] = hits
		}(w, anns[lo:hi])
	}
	wg.Wait()
	// Prefer a real evaluation error from the lowest chunk over the
	// derived cancellations it triggered in the others.
	var firstErr error
	for _, err := range errs {
		if err != nil && !isCtxErr(err) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []*Annotation
	for _, hits := range results {
		out = append(out, hits...)
	}
	return out, nil
}

func isCtxErr(err error) bool {
	return err == context.Canceled || err == context.DeadlineExceeded
}

// searchChunk evaluates q over one ascending-ID slice of annotations.
func searchChunk(ctx context.Context, q *xquery.Query, expr string, anns []*Annotation) ([]*Annotation, error) {
	var out []*Annotation
	for i, ann := range anns {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		val, err := q.EvalValue(ann.Content)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %q on annotation %d: %w", expr, ann.ID, err)
		}
		if val.AsBool() {
			out = append(out, ann)
		}
	}
	return out, nil
}

// SearchContents evaluates a path-expression query against the current
// view (see View.SearchContents).
func (s *Store) SearchContents(expr string) ([]*Annotation, error) {
	return s.View().SearchContents(expr)
}

// SearchContentsCtx is SearchContents with cancellation.
func (s *Store) SearchContentsCtx(ctx context.Context, expr string) ([]*Annotation, error) {
	return s.View().SearchContentsCtx(ctx, expr)
}

// NormalizeKeyword canonicalises a user-supplied keyword the way the
// inverted index stores tokens: trimmed and lower-cased. Every keyword
// comparison path (the index seed, the document scan, and the query
// layer's contains re-check) must share this helper — normalising in
// one path but not another makes seeded and scanned candidate sets
// disagree on padded input like " tp53 ".
func NormalizeKeyword(word string) string {
	return strings.ToLower(strings.TrimSpace(word))
}

// SearchKeyword returns the annotations whose content contains the word
// (case-insensitive, token match). When useIndex is true the inverted
// keyword index answers directly; otherwise every document is scanned
// (ablation A6 compares the two).
func (v *View) SearchKeyword(word string, useIndex bool) []*Annotation {
	token := NormalizeKeyword(word)
	var out []*Annotation
	if useIndex {
		// Posting lists are maintained sorted by annotation ID, so the
		// result needs no per-call sort.
		ids, _ := v.keywordIdx.get(token)
		for _, id := range ids {
			if ann := v.annotations.get(id); ann != nil {
				out = append(out, ann)
			}
		}
		return out
	}
	v.annotations.each(func(_ uint64, ann *Annotation) bool {
		for _, w := range ann.Content.Keywords() {
			if w == token {
				out = append(out, ann)
				break
			}
		}
		return true
	})
	return out
}

// SearchKeyword returns the annotations containing the word (see
// View.SearchKeyword).
func (s *Store) SearchKeyword(word string, useIndex bool) []*Annotation {
	return s.View().SearchKeyword(word, useIndex)
}

// AnnotationsOnObject returns the annotations having at least one referent
// marking the given data object, via the a-graph join index: object <-
// referent <- content. Graph hits are filtered through the pinned view,
// so an annotation committed after the view was pinned is never surfaced.
func (v *View) AnnotationsOnObject(typ ObjectType, objectID string) []*Annotation {
	objNode := agraph.Object(string(typ), objectID)
	seen := make(map[uint64]bool)
	var out []*Annotation
	v.graph.InEach(objNode, func(re agraph.Edge) bool {
		v.graph.InEach(re.From, func(ce agraph.Edge) bool {
			annID, ok := parseContentRef(ce.From)
			if !ok || seen[annID] {
				return true
			}
			seen[annID] = true
			if ann := v.annotations.get(annID); ann != nil {
				out = append(out, ann)
			}
			return true
		}, agraph.LabelAnnotates)
		return true
	}, agraph.LabelMarks)
	sortAnnotations(out)
	return out
}

// AnnotationsOnObject returns the annotations marking the given object.
func (s *Store) AnnotationsOnObject(typ ObjectType, objectID string) []*Annotation {
	return s.View().AnnotationsOnObject(typ, objectID)
}

// AnnotationsOfReferent returns the annotations attached to a referent.
func (v *View) AnnotationsOfReferent(refID uint64) []*Annotation {
	var out []*Annotation
	v.graph.InEach(agraph.Referent(refID), func(e agraph.Edge) bool {
		if annID, ok := parseContentRef(e.From); ok {
			if ann := v.annotations.get(annID); ann != nil {
				out = append(out, ann)
			}
		}
		return true
	}, agraph.LabelAnnotates)
	sortAnnotations(out)
	return out
}

// AnnotationsOfReferent returns the annotations attached to a referent.
func (s *Store) AnnotationsOfReferent(refID uint64) []*Annotation {
	return s.View().AnnotationsOfReferent(refID)
}

// AnnotationsWithTerm returns the annotations pointing at the exact
// ontology term.
func (v *View) AnnotationsWithTerm(ontologyName, termID string) []*Annotation {
	var out []*Annotation
	seen := make(map[uint64]bool)
	v.graph.InEach(agraph.Term(ontologyName, termID), func(e agraph.Edge) bool {
		if annID, ok := parseContentRef(e.From); ok && !seen[annID] {
			seen[annID] = true
			if ann := v.annotations.get(annID); ann != nil {
				out = append(out, ann)
			}
		}
		return true
	}, agraph.LabelRefersTo)
	sortAnnotations(out)
	return out
}

// AnnotationsWithTerm returns the annotations pointing at the term.
func (s *Store) AnnotationsWithTerm(ontologyName, termID string) []*Annotation {
	return s.View().AnnotationsWithTerm(ontologyName, termID)
}

// AnnotationsWithTermUnder returns the annotations pointing at the given
// term or any of its instances (CI closure) — ontology-expanded retrieval,
// the building block of both paper queries.
func (v *View) AnnotationsWithTermUnder(ontologyName, rootTerm string) ([]*Annotation, error) {
	o, err := v.Ontology(ontologyName)
	if err != nil {
		return nil, err
	}
	instances, err := o.CI(rootTerm)
	if err != nil {
		return nil, err
	}
	terms := append([]string{rootTerm}, instances...)
	seen := make(map[uint64]bool)
	var out []*Annotation
	for _, term := range terms {
		for _, ann := range v.AnnotationsWithTerm(ontologyName, term) {
			if !seen[ann.ID] {
				seen[ann.ID] = true
				out = append(out, ann)
			}
		}
	}
	sortAnnotations(out)
	return out, nil
}

// AnnotationsWithTermUnder returns annotations under the term's closure.
func (s *Store) AnnotationsWithTermUnder(ontologyName, rootTerm string) ([]*Annotation, error) {
	return s.View().AnnotationsWithTermUnder(ontologyName, rootTerm)
}

// RelatedAnnotations returns annotations indirectly related to the given
// one: those sharing a referent, or sharing a marked data object. This is
// the paper's "if the same referent is connected to two different
// annotations … the two annotations become indirectly related".
func (v *View) RelatedAnnotations(annID uint64) ([]*Annotation, error) {
	if _, err := v.Annotation(annID); err != nil {
		return nil, err
	}
	content := agraph.ContentRoot(annID)
	seen := map[uint64]bool{annID: true}
	var out []*Annotation
	add := func(id uint64) {
		if !seen[id] {
			seen[id] = true
			if ann := v.annotations.get(id); ann != nil {
				out = append(out, ann)
			}
		}
	}
	addAnnotators := func(refNode agraph.NodeRef) {
		v.graph.InEach(refNode, func(e agraph.Edge) bool {
			if id, ok := parseContentRef(e.From); ok {
				add(id)
			}
			return true
		}, agraph.LabelAnnotates)
	}
	v.graph.OutEach(content, func(refEdge agraph.Edge) bool {
		refNode := refEdge.To
		// Annotations sharing this referent.
		addAnnotators(refNode)
		// Annotations marking the same object through other referents.
		v.graph.OutEach(refNode, func(objEdge agraph.Edge) bool {
			v.graph.InEach(objEdge.To, func(otherRef agraph.Edge) bool {
				addAnnotators(otherRef.From)
				return true
			}, agraph.LabelMarks)
			return true
		}, agraph.LabelMarks)
		return true
	}, agraph.LabelAnnotates)
	sortAnnotations(out)
	return out, nil
}

// RelatedAnnotations returns annotations indirectly related to annID.
func (s *Store) RelatedAnnotations(annID uint64) ([]*Annotation, error) {
	return s.View().RelatedAnnotations(annID)
}

// CorrelatedItem is one entry of the correlated-data view: something
// adjacent to an annotation in the a-graph.
type CorrelatedItem struct {
	Node  agraph.NodeRef
	Label agraph.EdgeLabel
	// Description is a human-readable rendering of the target.
	Description string
}

// CorrelatedData implements the query tab's correlated data viewer: the
// data objects the annotation marks, the ontology terms it references,
// and the other annotations reachable through shared referents/objects.
func (v *View) CorrelatedData(annID uint64) ([]CorrelatedItem, error) {
	if _, err := v.Annotation(annID); err != nil {
		return nil, err
	}
	content := agraph.ContentRoot(annID)
	var items []CorrelatedItem
	v.graph.OutEach(content, func(refEdge agraph.Edge) bool {
		v.graph.OutEach(refEdge.To, func(objEdge agraph.Edge) bool {
			items = append(items, CorrelatedItem{
				Node:        objEdge.To,
				Label:       agraph.LabelMarks,
				Description: "object " + objEdge.To.Key,
			})
			return true
		}, agraph.LabelMarks)
		return true
	}, agraph.LabelAnnotates)
	v.graph.OutEach(content, func(termEdge agraph.Edge) bool {
		desc := "term " + termEdge.To.Key
		if parts := strings.SplitN(termEdge.To.Key, "/", 2); len(parts) == 2 {
			if o, ok := v.ontologies[parts[0]]; ok {
				if t, ok := o.Term(parts[1]); ok && t.Name != "" {
					desc = fmt.Sprintf("term %s (%s)", t.Name, termEdge.To.Key)
				}
			}
		}
		items = append(items, CorrelatedItem{
			Node:        termEdge.To,
			Label:       agraph.LabelRefersTo,
			Description: desc,
		})
		return true
	}, agraph.LabelRefersTo)
	related, err := v.RelatedAnnotations(annID)
	if err != nil {
		return nil, err
	}
	for _, rel := range related {
		items = append(items, CorrelatedItem{
			Node:        agraph.ContentRoot(rel.ID),
			Label:       agraph.LabelAnnotates,
			Description: fmt.Sprintf("annotation %d (%s)", rel.ID, rel.DC.First("title")),
		})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Node.Kind != items[j].Node.Kind {
			return items[i].Node.Kind < items[j].Node.Kind
		}
		return items[i].Node.Key < items[j].Node.Key
	})
	return items, nil
}

// CorrelatedData returns the correlated-data view of an annotation.
func (s *Store) CorrelatedData(annID uint64) ([]CorrelatedItem, error) {
	return s.View().CorrelatedData(annID)
}

// PathBetweenAnnotations returns a shortest a-graph path between two
// annotations' content nodes.
func (v *View) PathBetweenAnnotations(a, b uint64) (*agraph.Path, error) {
	if _, err := v.Annotation(a); err != nil {
		return nil, err
	}
	if _, err := v.Annotation(b); err != nil {
		return nil, err
	}
	return v.graph.FindPath(agraph.ContentRoot(a), agraph.ContentRoot(b))
}

// PathBetweenAnnotations returns a shortest a-graph path between two
// annotations' content nodes.
func (s *Store) PathBetweenAnnotations(a, b uint64) (*agraph.Path, error) {
	return s.View().PathBetweenAnnotations(a, b)
}

// ConnectAnnotations returns a connection subgraph joining the given
// annotations' content nodes (the paper's connect primitive applied to
// query-result collation).
func (v *View) ConnectAnnotations(ids ...uint64) (*agraph.Subgraph, error) {
	refs := make([]agraph.NodeRef, 0, len(ids))
	for _, id := range ids {
		if _, err := v.Annotation(id); err != nil {
			return nil, err
		}
		refs = append(refs, agraph.ContentRoot(id))
	}
	return v.graph.Connect(refs...)
}

// ConnectAnnotations returns a connection subgraph joining the given
// annotations' content nodes.
func (s *Store) ConnectAnnotations(ids ...uint64) (*agraph.Subgraph, error) {
	return s.View().ConnectAnnotations(ids...)
}

// parseContentRef extracts the annotation ID from a content node ref.
func parseContentRef(ref agraph.NodeRef) (uint64, bool) {
	ann, _, ok := agraph.ContentID(ref)
	return ann, ok
}

// ContentFragments evaluates a path expression against one annotation and
// returns the matching XML nodes (the paper's "XQuery fragments to
// retrieve fragments of annotation").
func (v *View) ContentFragments(annID uint64, expr string) ([]*xmldoc.Node, error) {
	ann, err := v.Annotation(annID)
	if err != nil {
		return nil, err
	}
	q, err := xquery.Compile(expr)
	if err != nil {
		return nil, err
	}
	return q.Eval(ann.Content)
}

// ContentFragments evaluates a path expression against one annotation.
func (s *Store) ContentFragments(annID uint64, expr string) ([]*xmldoc.Node, error) {
	return s.View().ContentFragments(annID, expr)
}
