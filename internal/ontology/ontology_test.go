package ontology

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// buildEnzymes constructs a small molecular-function hierarchy:
//
//	enzyme
//	  ├─ hydrolase (is_a)
//	  │    ├─ protease (is_a)
//	  │    │    ├─ serine-protease (is_a)
//	  │    │    └─ metallo-protease (is_a)
//	  │    └─ nuclease (is_a)
//	  └─ kinase (is_a)
//	trypsin --instance_of--> serine-protease
//	protease --part_of--> proteolysis
func buildEnzymes(t testing.TB) *Ontology {
	o := New("enzymes")
	for _, id := range []string{
		"enzyme", "hydrolase", "protease", "serine-protease",
		"metallo-protease", "nuclease", "kinase", "trypsin", "proteolysis",
	} {
		if _, err := o.AddTerm(id, strings.ToUpper(id[:1])+id[1:]); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct{ from, to, rel string }{
		{"hydrolase", "enzyme", IsA},
		{"protease", "hydrolase", IsA},
		{"serine-protease", "protease", IsA},
		{"metallo-protease", "protease", IsA},
		{"nuclease", "hydrolase", IsA},
		{"kinase", "enzyme", IsA},
		{"trypsin", "serine-protease", InstanceOf},
		{"protease", "proteolysis", PartOf},
	}
	for _, e := range edges {
		if err := o.AddEdge(e.from, e.to, e.rel, Some); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddTermErrors(t *testing.T) {
	o := New("x")
	if _, err := o.AddTerm("", "no id"); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := o.AddTerm("a", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddTerm("a", "again"); !errors.Is(err, ErrDuplicateTerm) {
		t.Fatalf("duplicate: err = %v", err)
	}
	if err := o.AddEdge("a", "ghost", IsA, Some); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("edge to ghost: err = %v", err)
	}
	if err := o.AddEdge("ghost", "a", IsA, Some); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("edge from ghost: err = %v", err)
	}
}

func TestCI(t *testing.T) {
	o := buildEnzymes(t)
	got, err := o.CI("protease")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"metallo-protease", "serine-protease", "trypsin"}
	assertStrings(t, got, want)

	got, err = o.CI("enzyme")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"hydrolase", "kinase", "metallo-protease", "nuclease",
		"protease", "serine-protease", "trypsin"}
	assertStrings(t, got, want)

	// Leaf has no instances.
	got, _ = o.CI("trypsin")
	if len(got) != 0 {
		t.Fatalf("CI(trypsin) = %v", got)
	}
	if _, err := o.CI("ghost"); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("CI ghost: err = %v", err)
	}
}

func TestCRI(t *testing.T) {
	o := buildEnzymes(t)
	// Only is_a: trypsin (instance_of) is excluded.
	got, err := o.CRI("protease", IsA)
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, got, []string{"metallo-protease", "serine-protease"})

	// Only part_of: protease is part_of proteolysis.
	got, err = o.CRI("proteolysis", PartOf)
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, got, []string{"protease"})
}

func TestCmRI(t *testing.T) {
	o := buildEnzymes(t)
	got, err := o.CmRI("proteolysis", []string{PartOf, IsA})
	if err != nil {
		t.Fatal(err)
	}
	// protease via part_of, then its is_a descendants.
	assertStrings(t, got, []string{"metallo-protease", "protease", "serine-protease"})
}

func TestMCmRI(t *testing.T) {
	o := buildEnzymes(t)
	got, err := o.MCmRI([]string{"kinase", "nuclease"}, []string{IsA, InstanceOf})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("leaves have no instances, got %v", got)
	}
	got, err = o.MCmRI([]string{"protease", "kinase"}, []string{IsA, InstanceOf})
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, got, []string{"metallo-protease", "serine-protease", "trypsin"})
	if _, err := o.MCmRI([]string{"protease", "ghost"}, nil); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("mCmRI ghost: err = %v", err)
	}
}

func TestSubTree(t *testing.T) {
	o := buildEnzymes(t)
	st, err := o.SubTree("hydrolase", []string{IsA})
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, st.Terms, []string{"hydrolase", "metallo-protease",
		"nuclease", "protease", "serine-protease"})
	if !st.Contains("protease") || st.Contains("kinase") {
		t.Fatal("Contains wrong")
	}
	if st.Size() != 5 {
		t.Fatalf("Size = %d", st.Size())
	}
	// Edges are the induced is_a restriction.
	for _, e := range st.Edges {
		if e.Rel != IsA {
			t.Fatalf("unexpected edge %v", e)
		}
		if !st.Contains(e.From) || !st.Contains(e.To) {
			t.Fatalf("edge %v leaves subtree", e)
		}
	}
	if len(st.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(st.Edges))
	}
}

func TestSubTreeDiff(t *testing.T) {
	o := buildEnzymes(t)
	st, err := o.SubTreeDiff("hydrolase", "protease", []string{IsA})
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, st.Terms, []string{"hydrolase", "nuclease"})

	// Y not a descendant of X.
	if _, err := o.SubTreeDiff("hydrolase", "kinase", []string{IsA}); !errors.Is(err, ErrNotDescendant) {
		t.Fatalf("non-descendant: err = %v", err)
	}
	// X == Y.
	if _, err := o.SubTreeDiff("protease", "protease", []string{IsA}); !errors.Is(err, ErrNotDescendant) {
		t.Fatalf("x==y: err = %v", err)
	}
	// Diff is always a subset of the subtree (paper's algebraic identity).
	full, _ := o.SubTree("hydrolase", []string{IsA})
	for _, id := range st.Terms {
		if !full.Contains(id) {
			t.Fatalf("%s in diff but not in subtree", id)
		}
	}
}

func TestIsDescendant(t *testing.T) {
	o := buildEnzymes(t)
	if !o.IsDescendant("trypsin", "enzyme", InstanceRelations) {
		t.Fatal("trypsin should be under enzyme")
	}
	if o.IsDescendant("kinase", "hydrolase", []string{IsA}) {
		t.Fatal("kinase is not under hydrolase")
	}
	if o.IsDescendant("enzyme", "enzyme", nil) {
		t.Fatal("a term is not its own descendant")
	}
	if o.IsDescendant("ghost", "enzyme", nil) || o.IsDescendant("enzyme", "ghost", nil) {
		t.Fatal("ghost terms cannot be descendants")
	}
}

func TestValidateCycle(t *testing.T) {
	o := buildEnzymes(t)
	if err := o.Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
	// Introduce an is_a cycle.
	if err := o.AddEdge("enzyme", "protease", IsA, Some); err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Traversals must still terminate on cyclic graphs.
	if _, err := o.CI("protease"); err != nil {
		t.Fatalf("CI on cyclic graph errored: %v", err)
	}
}

func TestRootsAndNames(t *testing.T) {
	o := buildEnzymes(t)
	roots := o.Roots()
	assertStrings(t, roots, []string{"enzyme", "proteolysis", "trypsin"})

	term, ok := o.TermByName("Protease")
	if !ok || term.ID != "protease" {
		t.Fatalf("TermByName = %v, %v", term, ok)
	}
	term, _ = o.Term("kinase")
	term.Synonyms = append(term.Synonyms, "phosphotransferase")
	got, ok := o.TermByName("phosphotransferase")
	if !ok || got.ID != "kinase" {
		t.Fatal("synonym lookup failed")
	}
	if _, ok := o.TermByName("nothing"); ok {
		t.Fatal("ghost name found")
	}
}

const oboSample = `format-version: 1.2
ontology: nif-sample

[Term]
id: NIF:0001
name: brain region

[Term]
id: NIF:0002
name: cerebellum
is_a: NIF:0001 ! brain region

[Term]
id: NIF:0003
name: deep cerebellar nuclei
synonym: "Deep Cerebellar nuclei" EXACT []
def: "The clusters of neurons in the white matter of the cerebellum." []
is_a: NIF:0002
relationship: part_of NIF:0002

[Typedef]
id: part_of
name: part of
`

func TestParseOBO(t *testing.T) {
	o, err := ParseOBOString(oboSample)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "nif-sample" {
		t.Fatalf("name = %q", o.Name())
	}
	if o.Len() != 3 {
		t.Fatalf("terms = %d", o.Len())
	}
	dcn, ok := o.Term("NIF:0003")
	if !ok || dcn.Name != "deep cerebellar nuclei" {
		t.Fatalf("NIF:0003 = %+v", dcn)
	}
	if len(dcn.Synonyms) != 1 || dcn.Synonyms[0] != "Deep Cerebellar nuclei" {
		t.Fatalf("synonyms = %v", dcn.Synonyms)
	}
	if dcn.Def == "" {
		t.Fatal("def not parsed")
	}
	got, err := o.CI("NIF:0001")
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, got, []string{"NIF:0002", "NIF:0003"})
	got, err = o.CRI("NIF:0002", PartOf)
	if err != nil {
		t.Fatal(err)
	}
	assertStrings(t, got, []string{"NIF:0003"})
}

func TestParseOBOErrors(t *testing.T) {
	cases := []string{
		"[Term]\nname: before id\n",
		"[Term]\nid: a\nis_a: ghost\n",
		"[Term]\nid: a\n[Term]\nid: a\n",
		"[Term]\nid: a\nrelationship: part_of\n",
		"[Term]\nid: a\nbadline\n",
	}
	for i, src := range cases {
		if _, err := ParseOBOString(src); err == nil {
			t.Errorf("case %d: no error for %q", i, src)
		}
	}
}

func TestOBORoundTrip(t *testing.T) {
	o := buildEnzymes(t)
	var sb strings.Builder
	if err := o.WriteOBO(&sb); err != nil {
		t.Fatal(err)
	}
	o2, err := ParseOBOString(sb.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if o2.Len() != o.Len() || o2.EdgeCount() != o.EdgeCount() {
		t.Fatalf("round trip: %d/%d terms, %d/%d edges",
			o2.Len(), o.Len(), o2.EdgeCount(), o.EdgeCount())
	}
	a, _ := o.CI("enzyme")
	b, _ := o2.CI("enzyme")
	assertStrings(t, b, a)
}

// TestQuickSubTreeIdentities checks algebraic identities on generated
// layered DAGs: CI(c) == SubTree(c).Terms − {c} under instance relations,
// and SubTreeDiff ⊆ SubTree.
func TestQuickSubTreeIdentities(t *testing.T) {
	check := func(layerSizes [4]uint8, linkBits []byte) bool {
		o := New("gen")
		var layers [][]string
		id := 0
		for _, sz := range layerSizes {
			n := int(sz%4) + 1
			var layer []string
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("t%d", id)
				id++
				if _, err := o.AddTerm(name, name); err != nil {
					return false
				}
				layer = append(layer, name)
			}
			layers = append(layers, layer)
		}
		// Link each term to one or two parents in the layer above
		// (child -> parent, acyclic by construction).
		bit := 0
		nextBit := func() int {
			if len(linkBits) == 0 {
				return 0
			}
			b := int(linkBits[bit%len(linkBits)])
			bit++
			return b
		}
		for li := 1; li < len(layers); li++ {
			for _, child := range layers[li] {
				parents := layers[li-1]
				p1 := parents[nextBit()%len(parents)]
				if err := o.AddEdge(child, p1, IsA, Some); err != nil {
					return false
				}
				if nextBit()%3 == 0 {
					p2 := parents[nextBit()%len(parents)]
					if p2 != p1 {
						_ = o.AddEdge(child, p2, IsA, Some)
					}
				}
			}
		}
		if err := o.Validate(); err != nil {
			return false
		}
		root := layers[0][0]
		ci, err := o.CI(root)
		if err != nil {
			return false
		}
		st, err := o.SubTree(root, InstanceRelations)
		if err != nil {
			return false
		}
		if len(ci) != st.Size()-1 {
			return false
		}
		for _, term := range ci {
			if !st.Contains(term) {
				return false
			}
		}
		// Diff identity for any proper descendant.
		if len(ci) > 0 {
			y := ci[0]
			diff, err := o.SubTreeDiff(root, y, InstanceRelations)
			if err != nil {
				return false
			}
			for _, term := range diff.Terms {
				if !st.Contains(term) || term == y {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func assertStrings(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func BenchmarkCI(b *testing.B) {
	// A 6-level tree with fanout 5: 5^0 + ... + 5^5 = 3906 terms.
	o := New("bench")
	_, _ = o.AddTerm("root", "root")
	frontier := []string{"root"}
	id := 0
	for depth := 0; depth < 5; depth++ {
		var next []string
		for _, parent := range frontier {
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("n%d", id)
				id++
				_, _ = o.AddTerm(name, name)
				_ = o.AddEdge(name, parent, IsA, Some)
				next = append(next, name)
			}
		}
		frontier = next
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.CI("root"); err != nil {
			b.Fatal(err)
		}
	}
}
