package ontology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseOBO reads an ontology from a subset of the OBO flat-file format:
//
//	format-version: 1.2
//	ontology: go
//
//	[Term]
//	id: GO:0008233
//	name: peptidase activity
//	synonym: "protease activity" EXACT []
//	def: "Catalysis of the hydrolysis of peptide bonds." []
//	is_a: GO:0003824 ! catalytic activity
//	relationship: part_of GO:0044238 ! primary metabolic process
//
// Unknown tags and non-Term stanzas are ignored. Edges referencing terms
// that never appear are rejected.
func ParseOBO(r io.Reader) (*Ontology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	name := "obo"
	type pendingEdge struct {
		from, to, rel string
		line          int
	}
	var edges []pendingEdge
	o := New(name)
	var cur *Term
	inTerm := false
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "!") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			inTerm = line == "[Term]"
			cur = nil
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("ontology: obo line %d: missing ':'", lineNo)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		// Strip trailing "! comment".
		if i := strings.Index(val, " ! "); i >= 0 {
			val = strings.TrimSpace(val[:i])
		}
		if !inTerm {
			if key == "ontology" {
				o.name = val
			}
			continue
		}
		switch key {
		case "id":
			if cur != nil {
				return nil, fmt.Errorf("ontology: obo line %d: duplicate id in stanza", lineNo)
			}
			t, err := o.AddTerm(val, "")
			if err != nil {
				return nil, fmt.Errorf("ontology: obo line %d: %w", lineNo, err)
			}
			cur = t
		case "name":
			if cur == nil {
				return nil, fmt.Errorf("ontology: obo line %d: name before id", lineNo)
			}
			cur.Name = val
		case "def":
			if cur != nil {
				cur.Def = stripQuoted(val)
			}
		case "synonym":
			if cur != nil {
				cur.Synonyms = append(cur.Synonyms, stripQuoted(val))
			}
		case "is_a":
			if cur == nil {
				return nil, fmt.Errorf("ontology: obo line %d: is_a before id", lineNo)
			}
			edges = append(edges, pendingEdge{cur.ID, firstField(val), IsA, lineNo})
		case "relationship":
			if cur == nil {
				return nil, fmt.Errorf("ontology: obo line %d: relationship before id", lineNo)
			}
			fields := strings.Fields(val)
			if len(fields) < 2 {
				return nil, fmt.Errorf("ontology: obo line %d: relationship needs 'rel target'", lineNo)
			}
			edges = append(edges, pendingEdge{cur.ID, fields[1], fields[0], lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: obo read: %w", err)
	}
	for _, e := range edges {
		if err := o.AddEdge(e.from, e.to, e.rel, Some); err != nil {
			return nil, fmt.Errorf("ontology: obo line %d: %w", e.line, err)
		}
	}
	return o, nil
}

// ParseOBOString parses OBO text from a string.
func ParseOBOString(s string) (*Ontology, error) {
	return ParseOBO(strings.NewReader(s))
}

// WriteOBO serialises the ontology to the OBO subset read by ParseOBO.
func (o *Ontology) WriteOBO(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "format-version: 1.2\nontology: %s\n", o.name)
	for _, id := range o.Terms() {
		t, _ := o.Term(id)
		fmt.Fprintf(bw, "\n[Term]\nid: %s\nname: %s\n", t.ID, t.Name)
		if t.Def != "" {
			fmt.Fprintf(bw, "def: %q []\n", t.Def)
		}
		for _, s := range t.Synonyms {
			fmt.Fprintf(bw, "synonym: %q EXACT []\n", s)
		}
		for _, e := range o.Parents(id) {
			if e.Rel == IsA {
				fmt.Fprintf(bw, "is_a: %s\n", e.To)
			} else {
				fmt.Fprintf(bw, "relationship: %s %s\n", e.Rel, e.To)
			}
		}
	}
	return bw.Flush()
}

func stripQuoted(s string) string {
	if len(s) >= 2 && s[0] == '"' {
		if i := strings.Index(s[1:], `"`); i >= 0 {
			return s[1 : i+1]
		}
	}
	return s
}

func firstField(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
