package ontology

import (
	"errors"
	"reflect"
	"testing"
)

// multiParentOBO is a diamond-shaped fixture with a multi-parent term
// (GO:5 is_a GO:3 and is_a GO:4, which both is_a GO:2) plus a part_of
// branch — the closure shapes the propagation engine leans on.
//
//	    GO:1 (root)
//	      |
//	    GO:2
//	   /    \
//	GO:3    GO:4        CC:1
//	   \    /             | part_of
//	    GO:5 ------------ CC:2 (GO:5 part_of CC:2)
//	      |
//	    GO:6
const multiParentOBO = `format-version: 1.2
ontology: fixture

[Term]
id: GO:1
name: molecular function

[Term]
id: GO:2
name: catalytic activity
is_a: GO:1

[Term]
id: GO:3
name: hydrolase activity
is_a: GO:2

[Term]
id: GO:4
name: peptide bond activity
is_a: GO:2

[Term]
id: GO:5
name: peptidase activity
synonym: "protease activity" EXACT []
is_a: GO:3 ! hydrolase
is_a: GO:4 ! peptide bond
relationship: part_of CC:2 ! membrane

[Term]
id: GO:6
name: serine peptidase activity
is_a: GO:5

[Term]
id: CC:1
name: cell

[Term]
id: CC:2
name: membrane
relationship: part_of CC:1
`

func mustFixture(t *testing.T) *Ontology {
	t.Helper()
	o, err := ParseOBOString(multiParentOBO)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("fixture must be acyclic: %v", err)
	}
	return o
}

func TestCIOverMultiParentDAG(t *testing.T) {
	o := mustFixture(t)
	// CI(GO:2) must reach GO:5 through either parent, counted once.
	ci, err := o.CI("GO:2")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"GO:3", "GO:4", "GO:5", "GO:6"}; !reflect.DeepEqual(ci, want) {
		t.Fatalf("CI(GO:2) = %v, want %v", ci, want)
	}
	// CI never traverses part_of: CC:1's instances exclude GO:5.
	ci, err = o.CI("CC:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ci) != 0 {
		t.Fatalf("CI(CC:1) = %v, want none (part_of is not an instance relation)", ci)
	}
	if _, err := o.CI("GO:404"); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("CI of missing term: %v", err)
	}
}

func TestCmRIRelationRestriction(t *testing.T) {
	o := mustFixture(t)
	// Restricted to part_of, CC:1 is reached only by the part_of chain.
	got, err := o.CmRI("CC:1", []string{PartOf})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"CC:2", "GO:5"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CmRI(CC:1, part_of) = %v, want %v", got, want)
	}
	// Mixed relation set: is_a+part_of reaches GO:6 under CC:1 too
	// (GO:6 is_a GO:5 part_of CC:2 part_of CC:1).
	got, err = o.CmRI("CC:1", []string{IsA, PartOf})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"CC:2", "GO:5", "GO:6"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CmRI(CC:1, is_a+part_of) = %v, want %v", got, want)
	}
}

func TestSubTreeOverMultiParentDAG(t *testing.T) {
	o := mustFixture(t)
	st, err := o.SubTree("GO:2", []string{IsA})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"GO:2", "GO:3", "GO:4", "GO:5", "GO:6"}; !reflect.DeepEqual(st.Terms, want) {
		t.Fatalf("SubTree(GO:2).Terms = %v, want %v", st.Terms, want)
	}
	// The diamond keeps both of GO:5's parent edges in the restriction.
	edgesFrom5 := 0
	for _, e := range st.Edges {
		if e.From == "GO:5" {
			edgesFrom5++
		}
	}
	if edgesFrom5 != 2 {
		t.Fatalf("SubTree kept %d edges from the multi-parent term, want 2", edgesFrom5)
	}
	if !st.Contains("GO:6") || st.Contains("CC:1") {
		t.Fatal("SubTree membership wrong")
	}

	// SubTree(X) - SubTree(Y) removes the diamond below GO:5.
	diff, err := o.SubTreeDiff("GO:2", "GO:5", []string{IsA})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"GO:2", "GO:3", "GO:4"}; !reflect.DeepEqual(diff.Terms, want) {
		t.Fatalf("SubTreeDiff = %v, want %v", diff.Terms, want)
	}
	if _, err := o.SubTreeDiff("GO:5", "GO:2", []string{IsA}); !errors.Is(err, ErrNotDescendant) {
		t.Fatalf("inverted SubTreeDiff: %v", err)
	}
}

func TestAncestorsOverMultiParentDAG(t *testing.T) {
	o := mustFixture(t)
	// The upward closure the propagation engine materializes: both
	// parents of the diamond, deduplicated, plus the part_of branch.
	anc, err := o.Ancestors("GO:6", []string{IsA, PartOf})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"CC:1", "CC:2", "GO:1", "GO:2", "GO:3", "GO:4", "GO:5"}; !reflect.DeepEqual(anc, want) {
		t.Fatalf("Ancestors(GO:6) = %v, want %v", anc, want)
	}
	anc, err = o.Ancestors("GO:6", []string{IsA})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"GO:1", "GO:2", "GO:3", "GO:4", "GO:5"}; !reflect.DeepEqual(anc, want) {
		t.Fatalf("Ancestors(GO:6, is_a) = %v, want %v", anc, want)
	}
	if _, err := o.Ancestors("GO:404", nil); !errors.Is(err, ErrNoSuchTerm) {
		t.Fatalf("Ancestors of missing term: %v", err)
	}
}

func TestCycleRejection(t *testing.T) {
	// An is_a cycle parses (edges are structurally fine) but Validate
	// rejects it, and the closure traversals terminate regardless.
	cyclic := `[Term]
id: A:1
is_a: A:3

[Term]
id: A:2
is_a: A:1

[Term]
id: A:3
is_a: A:2
`
	o, err := ParseOBOString(cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate on cycle: %v, want ErrCycle", err)
	}
	// Cycle-safe traversal: every term is an "instance" of A:1 except
	// itself, and the call returns rather than looping.
	ci, err := o.CI("A:1")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"A:2", "A:3"}; !reflect.DeepEqual(ci, want) {
		t.Fatalf("CI over cycle = %v, want %v", ci, want)
	}
	anc, err := o.Ancestors("A:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"A:2", "A:3"}; !reflect.DeepEqual(anc, want) {
		t.Fatalf("Ancestors over cycle = %v, want %v", anc, want)
	}
}
