// Package ontology is Graphitti's OntoQuest-equivalent ontology engine.
//
// The paper models ontologies "as graphs whose nodes correspond to terms
// and edges are domain-specific quantified binary relationships between
// term pairs"; annotations "only point to ontology nodes". This package
// implements that model together with the operation set the paper lists:
//
//	CI(c)                 all instances of concept c
//	CRI(c, R)             instances of c reachable by relation R
//	CmRI(c, R+)           instances of c restricted to a relation set
//	mCmRI(C+, R+)         instances of any concept in C+ via relations R+
//	SubTree(X, R')        the subtree under X restricted to relation R'
//	SubTree(X)−SubTree(Y) subtree difference for a descendant Y of X
//
// Edges point from the more specific term to the more general one (child →
// parent), so "the instances/subtree under X" are the terms that can reach
// X. Graphs may be DAGs; traversals are cycle-safe and Validate reports
// cycles in the is_a hierarchy.
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Standard relation labels.
const (
	IsA        = "is_a"
	InstanceOf = "instance_of"
	PartOf     = "part_of"
)

// InstanceRelations are the relations CI traverses.
var InstanceRelations = []string{IsA, InstanceOf}

// Quantifier qualifies an edge, per the paper's "quantified binary
// relationships" (existential or universal).
type Quantifier uint8

// Edge quantifiers.
const (
	Some Quantifier = iota // existential (default)
	All                    // universal
)

func (q Quantifier) String() string {
	if q == All {
		return "all"
	}
	return "some"
}

// Errors reported by ontology operations.
var (
	ErrNoSuchTerm    = errors.New("ontology: no such term")
	ErrDuplicateTerm = errors.New("ontology: duplicate term")
	ErrCycle         = errors.New("ontology: cycle in hierarchy")
	ErrNotDescendant = errors.New("ontology: term is not a descendant")
)

// Term is an ontology node.
type Term struct {
	ID       string
	Name     string
	Synonyms []string
	Def      string
}

// Edge is a directed, labeled, quantified relationship between two terms.
type Edge struct {
	From, To string
	Rel      string
	Quant    Quantifier
}

// Ontology is a term graph. All methods are safe for concurrent use.
type Ontology struct {
	name string

	mu    sync.RWMutex
	terms map[string]*Term
	out   map[string][]Edge // edges leaving a term (child -> parent)
	in    map[string][]Edge // edges entering a term
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{
		name:  name,
		terms: make(map[string]*Term),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// Name returns the ontology's name.
func (o *Ontology) Name() string { return o.name }

// Len reports the number of terms.
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.terms)
}

// EdgeCount reports the number of edges.
func (o *Ontology) EdgeCount() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	for _, es := range o.out {
		n += len(es)
	}
	return n
}

// AddTerm adds a term with the given ID and name.
func (o *Ontology) AddTerm(id, name string) (*Term, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty id", ErrNoSuchTerm)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.terms[id]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateTerm, id)
	}
	t := &Term{ID: id, Name: name}
	o.terms[id] = t
	return t, nil
}

// Term returns the term with the given ID.
func (o *Ontology) Term(id string) (*Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	t, ok := o.terms[id]
	return t, ok
}

// Terms returns all term IDs, sorted.
func (o *Ontology) Terms() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.terms))
	for id := range o.terms {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TermByName returns the first term whose name or synonym equals name.
func (o *Ontology) TermByName(name string) (*Term, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var ids []string
	for id := range o.terms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := o.terms[id]
		if t.Name == name {
			return t, true
		}
		for _, s := range t.Synonyms {
			if s == name {
				return t, true
			}
		}
	}
	return nil, false
}

// AddEdge adds a quantified relationship from the more specific term to the
// more general one. Both terms must exist.
func (o *Ontology) AddEdge(from, to, rel string, q Quantifier) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.terms[from]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTerm, from)
	}
	if _, ok := o.terms[to]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTerm, to)
	}
	e := Edge{From: from, To: to, Rel: rel, Quant: q}
	o.out[from] = append(o.out[from], e)
	o.in[to] = append(o.in[to], e)
	return nil
}

// Parents returns the edges leaving id (child -> parent), optionally
// filtered to a relation set.
func (o *Ontology) Parents(id string, rels ...string) []Edge {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return filterEdges(o.out[id], rels)
}

// Children returns the edges entering id (child -> parent), optionally
// filtered to a relation set.
func (o *Ontology) Children(id string, rels ...string) []Edge {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return filterEdges(o.in[id], rels)
}

func filterEdges(es []Edge, rels []string) []Edge {
	if len(rels) == 0 {
		return append([]Edge(nil), es...)
	}
	allowed := make(map[string]bool, len(rels))
	for _, r := range rels {
		allowed[r] = true
	}
	var out []Edge
	for _, e := range es {
		if allowed[e.Rel] {
			out = append(out, e)
		}
	}
	return out
}

// CI returns the set of all instances of concept c: every term that can
// reach c through is_a / instance_of edges. The result is sorted and
// excludes c itself.
func (o *Ontology) CI(c string) ([]string, error) {
	return o.CmRI(c, InstanceRelations)
}

// CRI returns the set of all instances of concept c by relation rel.
func (o *Ontology) CRI(c string, rel string) ([]string, error) {
	return o.CmRI(c, []string{rel})
}

// CmRI returns the set of all instances of concept c restricted to the
// given relation types: every term that reaches c using only edges whose
// relation is in rels.
func (o *Ontology) CmRI(c string, rels []string) ([]string, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.terms[c]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, c)
	}
	seen := o.descendantsLocked(c, rels)
	delete(seen, c)
	return sortedKeys(seen), nil
}

// MCmRI returns all instances reachable from any concept in cs using only
// edges from rels (the paper's mCmRI). Concepts themselves are excluded
// unless they are instances of another listed concept.
func (o *Ontology) MCmRI(cs []string, rels []string) ([]string, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	union := make(map[string]bool)
	for _, c := range cs {
		if _, ok := o.terms[c]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, c)
		}
	}
	for _, c := range cs {
		seen := o.descendantsLocked(c, rels)
		delete(seen, c)
		for id := range seen {
			union[id] = true
		}
	}
	return sortedKeys(union), nil
}

// descendantsLocked returns c plus every term that reaches c via rels.
func (o *Ontology) descendantsLocked(c string, rels []string) map[string]bool {
	allowed := make(map[string]bool, len(rels))
	for _, r := range rels {
		allowed[r] = true
	}
	seen := map[string]bool{c: true}
	queue := []string{c}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range o.in[cur] {
			if len(rels) > 0 && !allowed[e.Rel] {
				continue
			}
			if !seen[e.From] {
				seen[e.From] = true
				queue = append(queue, e.From)
			}
		}
	}
	return seen
}

// Ancestors returns every term reachable from id through the given
// relations (child -> parent edges): the upward closure the propagation
// engine materializes, per the paper's "an annotation only points to
// ontology nodes" — pointing at a term implicitly annotates everything
// the term specializes. Empty rels means all relations. The result is
// sorted and excludes id itself; traversal is cycle-safe.
func (o *Ontology) Ancestors(id string, rels []string) ([]string, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.terms[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, id)
	}
	allowed := make(map[string]bool, len(rels))
	for _, r := range rels {
		allowed[r] = true
	}
	seen := map[string]bool{id: true}
	queue := []string{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range o.out[cur] {
			if len(rels) > 0 && !allowed[e.Rel] {
				continue
			}
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	delete(seen, id)
	return sortedKeys(seen), nil
}

// SubTree is the result of the SubTree operations: a root, the set of terms
// under it, and the edges of the induced restriction.
type SubTree struct {
	Root  string
	Terms []string // sorted; includes Root
	Edges []Edge
}

// Contains reports whether the subtree includes the term.
func (s *SubTree) Contains(id string) bool {
	i := sort.SearchStrings(s.Terms, id)
	return i < len(s.Terms) && s.Terms[i] == id
}

// Size returns the number of terms in the subtree.
func (s *SubTree) Size() int { return len(s.Terms) }

// SubTree returns the subtree under x restricted to the given relations
// (all relations when rels is empty).
func (o *Ontology) SubTree(x string, rels []string) (*SubTree, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.terms[x]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, x)
	}
	return o.subTreeLocked(x, rels), nil
}

func (o *Ontology) subTreeLocked(x string, rels []string) *SubTree {
	seen := o.descendantsLocked(x, rels)
	st := &SubTree{Root: x, Terms: sortedKeys(seen)}
	allowed := make(map[string]bool, len(rels))
	for _, r := range rels {
		allowed[r] = true
	}
	for _, id := range st.Terms {
		for _, e := range o.out[id] {
			if len(rels) > 0 && !allowed[e.Rel] {
				continue
			}
			if seen[e.To] {
				st.Edges = append(st.Edges, e)
			}
		}
	}
	sort.Slice(st.Edges, func(i, j int) bool {
		if st.Edges[i].From != st.Edges[j].From {
			return st.Edges[i].From < st.Edges[j].From
		}
		if st.Edges[i].To != st.Edges[j].To {
			return st.Edges[i].To < st.Edges[j].To
		}
		return st.Edges[i].Rel < st.Edges[j].Rel
	})
	return st
}

// SubTreeDiff returns SubTree(x, rels) minus SubTree(y, rels). Per the
// paper, y must be a descendant of x under rels.
func (o *Ontology) SubTreeDiff(x, y string, rels []string) (*SubTree, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.terms[x]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, x)
	}
	if _, ok := o.terms[y]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTerm, y)
	}
	under := o.descendantsLocked(x, rels)
	if !under[y] || y == x {
		return nil, fmt.Errorf("%w: %s under %s", ErrNotDescendant, y, x)
	}
	minus := o.descendantsLocked(y, rels)
	kept := make(map[string]bool)
	for id := range under {
		if !minus[id] {
			kept[id] = true
		}
	}
	st := &SubTree{Root: x, Terms: sortedKeys(kept)}
	allowed := make(map[string]bool, len(rels))
	for _, r := range rels {
		allowed[r] = true
	}
	for _, id := range st.Terms {
		for _, e := range o.out[id] {
			if len(rels) > 0 && !allowed[e.Rel] {
				continue
			}
			if kept[e.To] {
				st.Edges = append(st.Edges, e)
			}
		}
	}
	return st, nil
}

// IsDescendant reports whether y can reach x via the given relations.
func (o *Ontology) IsDescendant(y, x string, rels []string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if _, ok := o.terms[x]; !ok {
		return false
	}
	if _, ok := o.terms[y]; !ok {
		return false
	}
	if x == y {
		return false
	}
	return o.descendantsLocked(x, rels)[y]
}

// Validate checks the is_a hierarchy for cycles.
func (o *Ontology) Validate() error {
	o.mu.RLock()
	defer o.mu.RUnlock()
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]uint8, len(o.terms))
	var visit func(id string) error
	visit = func(id string) error {
		color[id] = grey
		for _, e := range o.out[id] {
			if e.Rel != IsA {
				continue
			}
			switch color[e.To] {
			case grey:
				return fmt.Errorf("%w: %s -> %s", ErrCycle, id, e.To)
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	ids := make([]string, 0, len(o.terms))
	for id := range o.terms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if color[id] == white {
			if err := visit(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Roots returns the terms with no outgoing is_a edges, sorted.
func (o *Ontology) Roots() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var roots []string
	for id := range o.terms {
		isRoot := true
		for _, e := range o.out[id] {
			if e.Rel == IsA {
				isRoot = false
				break
			}
		}
		if isRoot {
			roots = append(roots, id)
		}
	}
	sort.Strings(roots)
	return roots
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
