// Package dublincore models the Dublin Core metadata element set used in
// Graphitti annotation contents.
//
// The paper specifies that "the annotation content produced by Graphitti is
// an XML document whose elements consist of Dublin core attributes and
// other user-defined tags". This package provides the fifteen elements of
// the Dublin Core Metadata Element Set 1.1, a Record holding repeatable
// element values, validation, and conversion to/from the xmldoc model.
package dublincore

import (
	"fmt"
	"sort"

	"graphitti/internal/xmldoc"
)

// Element is one of the fifteen Dublin Core elements.
type Element string

// The Dublin Core Metadata Element Set, version 1.1.
const (
	Title       Element = "title"
	Creator     Element = "creator"
	Subject     Element = "subject"
	Description Element = "description"
	Publisher   Element = "publisher"
	Contributor Element = "contributor"
	Date        Element = "date"
	Type        Element = "type"
	Format      Element = "format"
	Identifier  Element = "identifier"
	Source      Element = "source"
	Language    Element = "language"
	Relation    Element = "relation"
	Coverage    Element = "coverage"
	Rights      Element = "rights"
)

// Elements lists all fifteen elements in canonical order.
var Elements = []Element{
	Title, Creator, Subject, Description, Publisher, Contributor, Date,
	Type, Format, Identifier, Source, Language, Relation, Coverage, Rights,
}

var valid = func() map[Element]bool {
	m := make(map[Element]bool, len(Elements))
	for _, e := range Elements {
		m[e] = true
	}
	return m
}()

// IsValid reports whether e is one of the fifteen Dublin Core elements.
func (e Element) IsValid() bool { return valid[e] }

// Record is a set of Dublin Core element values. All elements are optional
// and repeatable, per the DCMES specification.
type Record struct {
	values map[Element][]string
}

// Set replaces the values of element e.
func (r *Record) Set(e Element, vals ...string) error {
	if !e.IsValid() {
		return fmt.Errorf("dublincore: unknown element %q", e)
	}
	if r.values == nil {
		r.values = make(map[Element][]string)
	}
	r.values[e] = append([]string(nil), vals...)
	return nil
}

// Add appends a value to element e.
func (r *Record) Add(e Element, val string) error {
	if !e.IsValid() {
		return fmt.Errorf("dublincore: unknown element %q", e)
	}
	if r.values == nil {
		r.values = make(map[Element][]string)
	}
	r.values[e] = append(r.values[e], val)
	return nil
}

// Get returns the values of element e (nil when unset).
func (r *Record) Get(e Element) []string {
	return r.values[e]
}

// First returns the first value of element e, or "".
func (r *Record) First(e Element) string {
	if vs := r.values[e]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// Len returns the total number of element values.
func (r *Record) Len() int {
	n := 0
	for _, vs := range r.values {
		n += len(vs)
	}
	return n
}

// Elements returns the elements that have at least one value, in canonical
// order.
func (r *Record) Elements() []Element {
	var out []Element
	for _, e := range Elements {
		if len(r.values[e]) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// AppendXML writes the record's elements as children of parent, one
// <dc:element> child per value, in canonical element order.
func (r *Record) AppendXML(doc *xmldoc.Document, parent *xmldoc.Node) {
	for _, e := range r.Elements() {
		vs := append([]string(nil), r.values[e]...)
		sort.Strings(vs)
		for _, v := range vs {
			doc.AddElementText(parent, "dc:"+string(e), v)
		}
	}
}

// FromXML reads Dublin Core values from the children of parent. Elements
// are recognised both with and without the "dc:" prefix; non-DC children
// are ignored.
func FromXML(parent *xmldoc.Node) *Record {
	r := &Record{}
	for _, c := range parent.ChildElements("") {
		name := c.Name
		if len(name) > 3 && name[:3] == "dc:" {
			name = name[3:]
		}
		e := Element(name)
		if e.IsValid() {
			_ = r.Add(e, c.Text())
		}
	}
	return r
}

// Validate checks that a record intended for a Graphitti annotation has the
// minimal fields the system relies on: at least one creator and a date.
func (r *Record) Validate() error {
	if len(r.Get(Creator)) == 0 {
		return fmt.Errorf("dublincore: record has no %s", Creator)
	}
	if len(r.Get(Date)) == 0 {
		return fmt.Errorf("dublincore: record has no %s", Date)
	}
	return nil
}
