package dublincore

import (
	"strings"
	"testing"

	"graphitti/internal/xmldoc"
)

func TestElementValidity(t *testing.T) {
	for _, e := range Elements {
		if !e.IsValid() {
			t.Errorf("%q should be valid", e)
		}
	}
	if len(Elements) != 15 {
		t.Fatalf("DCMES 1.1 has 15 elements, got %d", len(Elements))
	}
	for _, bad := range []Element{"", "author", "TITLE", "dc:title"} {
		if bad.IsValid() {
			t.Errorf("%q should be invalid", bad)
		}
	}
}

func TestRecordSetAddGet(t *testing.T) {
	var r Record
	if err := r.Set(Creator, "gupta"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(Creator, "condit"); err != nil {
		t.Fatal(err)
	}
	if got := r.Get(Creator); len(got) != 2 {
		t.Fatalf("Get(Creator) = %v", got)
	}
	if r.First(Creator) != "gupta" {
		t.Fatalf("First = %q", r.First(Creator))
	}
	if r.First(Title) != "" {
		t.Fatal("First of unset element should be empty")
	}
	if err := r.Set("author", "x"); err == nil {
		t.Fatal("Set with invalid element should fail")
	}
	if err := r.Add("author", "x"); err == nil {
		t.Fatal("Add with invalid element should fail")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestElementsOrder(t *testing.T) {
	var r Record
	_ = r.Set(Date, "2008-01-01")
	_ = r.Set(Title, "t")
	_ = r.Set(Subject, "s")
	got := r.Elements()
	want := []Element{Title, Subject, Date}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	var r Record
	_ = r.Set(Creator, "gupta")
	_ = r.Set(Subject, "influenza", "annotation")
	_ = r.Set(Date, "2007-11-02")

	d := xmldoc.NewDocument("annotation")
	meta := d.AddElement(d.Root, "meta")
	r.AppendXML(d, meta)

	out := d.String()
	if !strings.Contains(out, "<dc:creator>gupta</dc:creator>") {
		t.Fatalf("serialised XML missing creator: %s", out)
	}

	back := FromXML(meta)
	if back.First(Creator) != "gupta" {
		t.Fatalf("round-trip creator = %q", back.First(Creator))
	}
	if got := back.Get(Subject); len(got) != 2 {
		t.Fatalf("round-trip subjects = %v", got)
	}
	if back.First(Date) != "2007-11-02" {
		t.Fatalf("round-trip date = %q", back.First(Date))
	}
}

func TestFromXMLIgnoresUnknown(t *testing.T) {
	d, err := xmldoc.ParseString(`<m><dc:creator>a</dc:creator><custom>x</custom><creator>b</creator></m>`)
	if err != nil {
		t.Fatal(err)
	}
	r := FromXML(d.Root)
	if got := r.Get(Creator); len(got) != 2 {
		t.Fatalf("creators = %v (both prefixed and bare forms should parse)", got)
	}
}

func TestValidate(t *testing.T) {
	var r Record
	if err := r.Validate(); err == nil {
		t.Fatal("empty record should not validate")
	}
	_ = r.Set(Creator, "gupta")
	if err := r.Validate(); err == nil {
		t.Fatal("record without date should not validate")
	}
	_ = r.Set(Date, "2008-04-07")
	if err := r.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}
