package shard

import (
	"errors"
	"syscall"
	"testing"

	"graphitti/internal/durable"
	"graphitti/internal/faultfs"
	"graphitti/internal/prop"
)

// TestBroadcastConvergesAfterPartialFailure pins the recovery story for
// half-applied broadcasts: an I/O fault while a rule broadcast reaches
// shard 1 leaves the rule on shard 0 only; after recovering the shard,
// re-issuing the same broadcast must install it on the shards that
// missed it instead of aborting on shard 0's duplicate.
func TestBroadcastConvergesAfterPartialFailure(t *testing.T) {
	sc := faultfs.NewScript()
	s, err := Open(t.TempDir(), 2, durable.Options{Inject: sc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fail the WAL append itself (not the later fsync — a record that
	// reached the file would legitimately replay on recovery even though
	// it was never acknowledged).
	rule := prop.Rule{ID: "conv", Edge: prop.EdgeSharedReferent}
	sc.FailPath(faultfs.OpWrite, "shard-1", 1,
		faultfs.Fault{Err: faultfs.Errno(faultfs.OpWrite, syscall.EIO)})
	err = s.AddRule(rule)
	var se *Error
	if err == nil || !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("want broadcast failure tagged shard 1, got %v", err)
	}
	// Recovery replays shard 1 from disk, discarding the unacknowledged
	// in-memory application; the torn broadcast is now visible as a rule
	// present on shard 0 and absent on shard 1.
	if err := s.Reopen(1); err != nil {
		t.Fatal(err)
	}
	if got := len(prop.RulesOf(s.shardCore(0))); got != 1 {
		t.Fatalf("shard 0 has %d rules after torn broadcast, want 1", got)
	}
	if got := len(prop.RulesOf(s.shardCore(1))); got != 0 {
		t.Fatalf("shard 1 has %d rules after recovery, want 0", got)
	}
	// The remedy from the runbook: re-issue the broadcast. Shard 0
	// answers duplicate (skipped), shard 1 catches up.
	if err := s.AddRule(rule); err != nil {
		t.Fatalf("re-issued broadcast did not converge: %v", err)
	}
	for k := 0; k < 2; k++ {
		if got := len(prop.RulesOf(s.shardCore(k))); got != 1 {
			t.Fatalf("shard %d has %d rules after convergence, want 1", k, got)
		}
	}
	// Now a true duplicate: every shard rejects, and the caller sees it.
	if err := s.AddRule(rule); !errors.Is(err, prop.ErrDuplicateRule) {
		t.Fatalf("true duplicate broadcast: want ErrDuplicateRule, got %v", err)
	}
	// Same convergence shape for deletion: fully applied delete errors
	// only when no shard had the rule.
	if err := s.DeleteRule("conv"); err != nil {
		t.Fatalf("delete broadcast: %v", err)
	}
	if err := s.DeleteRule("conv"); !errors.Is(err, prop.ErrNoSuchRule) {
		t.Fatalf("deleting a gone rule: want ErrNoSuchRule, got %v", err)
	}
}
