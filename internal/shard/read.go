package shard

// Merged reads: every read pins one view per shard and combines the
// per-shard answers deterministically — concatenation plus ID-order (or
// name-order) merge, exploiting that IDs are globally unique and that
// each object is homed on exactly one shard. The per-shard view set is
// not a single atomic snapshot of the whole deployment: each shard's
// view is individually consistent, and a reader can observe shard A's
// commit before shard B's concurrent one (the anomaly-free property the
// paper's setting needs is per-annotation atomicity, which per-shard
// views preserve).

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/persist"
	"graphitti/internal/query"
)

// Views pins the current view of every shard, indexed by shard.
func (s *Store) Views() []*core.View {
	out := make([]*core.View, s.NumShards())
	for k := range out {
		out[k] = s.shardCore(k).View()
	}
	return out
}

// View returns shard k's current view.
func (s *Store) View(k int) *core.View { return s.shardCore(k).View() }

// Epoch returns the sum of the per-shard view epochs: the total number
// of mutations published across the deployment.
func (s *Store) Epoch() uint64 {
	var sum uint64
	for _, v := range s.Views() {
		sum += v.Epoch()
	}
	return sum
}

// Stats merges the per-shard component sizes. Routed components sum;
// broadcast components (ontologies) read from shard 0; components that
// can appear on several shards (graph nodes for shared terms, keywords,
// interval-tree domains touched by cross-shard commits) count the union.
func (s *Store) Stats() core.Stats {
	views := s.Views()
	var st core.Stats
	domains := map[string]bool{}
	keywords := map[string]bool{}
	nodes := map[agraph.NodeRef]bool{}
	for _, v := range views {
		vs := v.Stats()
		st.Annotations += vs.Annotations
		st.Referents += vs.Referents
		st.Sequences += vs.Sequences
		st.Alignments += vs.Alignments
		st.Trees += vs.Trees
		st.InteractionGraphs += vs.InteractionGraphs
		st.Images += vs.Images
		st.RTrees += vs.RTrees
		st.GraphEdges += vs.GraphEdges
		st.Derived += vs.Derived
		for _, d := range v.IntervalDomains() {
			domains[d] = true
		}
		v.EachKeyword(func(w string) bool { keywords[w] = true; return true })
		for _, n := range v.Graph().Nodes() {
			nodes[n] = true
		}
	}
	st.Ontologies = views[0].Stats().Ontologies
	st.IntervalTrees = len(domains)
	st.Keywords = len(keywords)
	st.GraphNodes = len(nodes)
	return st
}

// Annotation returns a committed annotation from its owner shard.
func (s *Store) Annotation(id uint64) (*core.Annotation, error) {
	for _, v := range s.Views() {
		if ann, err := v.Annotation(id); err == nil {
			return ann, nil
		}
	}
	return nil, errNoSuchAnnotation(id)
}

// Referent returns a committed referent from its owner shard.
func (s *Store) Referent(id uint64) (*core.Referent, error) {
	for _, v := range s.Views() {
		if r, err := v.Referent(id); err == nil {
			return r, nil
		}
	}
	return nil, errNoSuchReferent(id)
}

// Annotations returns all committed annotations across shards, merged in
// ID order.
func (s *Store) Annotations() []*core.Annotation {
	var out []*core.Annotation
	for _, v := range s.Views() {
		out = append(out, v.Annotations()...)
	}
	sortByID(out)
	return out
}

// AnnotationIDs returns the IDs of all committed annotations, sorted.
func (s *Store) AnnotationIDs() []uint64 {
	var out []uint64
	for _, v := range s.Views() {
		out = append(out, v.AnnotationIDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Referents returns all committed referents across shards in ID order.
func (s *Store) Referents() []*core.Referent {
	var out []*core.Referent
	for _, v := range s.Views() {
		out = append(out, v.Referents()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ObjectList returns every registered data object across shards, sorted
// by (type, id) — each object is homed on exactly one shard, so this is
// the same list the unsharded store would hold.
func (s *Store) ObjectList() []core.ObjectHandle {
	var out []core.ObjectHandle
	for _, v := range s.Views() {
		out = append(out, v.ObjectList()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Ontologies returns the registered ontology names (broadcast; shard 0).
func (s *Store) Ontologies() []string { return s.shardCore(0).Ontologies() }

// ReferentsAt routes the point stab to the domain's owner shard.
func (s *Store) ReferentsAt(domain string, pos int64) []*core.Referent {
	return s.shardCore(s.router.ShardOfKey(domain)).ReferentsAt(domain, pos)
}

// SearchKeyword merges the per-shard keyword hits in ID order.
func (s *Store) SearchKeyword(word string, useIndex bool) []*core.Annotation {
	var out []*core.Annotation
	for _, v := range s.Views() {
		out = append(out, v.SearchKeyword(word, useIndex)...)
	}
	sortByID(out)
	return out
}

// SearchContents evaluates a content search against every shard.
func (s *Store) SearchContents(expr string) ([]*core.Annotation, error) {
	return s.SearchContentsCtx(context.Background(), expr)
}

// SearchContentsCtx fans the scan out across shards (each shard scans
// its own view in parallel internally) and merges the hits in ID order —
// byte-identical to the unsharded scan of the merged annotation set.
func (s *Store) SearchContentsCtx(ctx context.Context, expr string) ([]*core.Annotation, error) {
	views := s.Views()
	results := make([][]*core.Annotation, len(views))
	errs := make([]error, len(views))
	var wg sync.WaitGroup
	for k, v := range views {
		wg.Add(1)
		go func(k int, v *core.View) {
			defer wg.Done()
			results[k], errs[k] = v.SearchContentsCtx(ctx, expr)
		}(k, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []*core.Annotation
	for _, r := range results {
		out = append(out, r...)
	}
	sortByID(out)
	return out, nil
}

// RelatedAnnotations answers from the annotation's owner shard (shared
// referents are intra-shard by routing).
func (s *Store) RelatedAnnotations(id uint64) ([]*core.Annotation, error) {
	k, ok := s.ownerOfAnnotation(id)
	if !ok {
		return nil, errNoSuchAnnotation(id)
	}
	return s.shardCore(k).RelatedAnnotations(id)
}

// CorrelatedData answers from the annotation's owner shard.
func (s *Store) CorrelatedData(id uint64) ([]core.CorrelatedItem, error) {
	k, ok := s.ownerOfAnnotation(id)
	if !ok {
		return nil, errNoSuchAnnotation(id)
	}
	return s.shardCore(k).CorrelatedData(id)
}

// DerivedAll merges the per-shard derived tables in source-ID order,
// preserving each source's fact order — the global DerivedEach order,
// since every source annotation lives on exactly one shard.
func (s *Store) DerivedAll() []core.DerivedFact {
	var out []core.DerivedFact
	for _, v := range s.Views() {
		out = append(out, v.DerivedAll()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// DerivedTargeting merges the provenance of one target node across
// shards: per-shard lists are (ascending source, canonical fact order)
// already, and sources are globally unique, so a stable source-order
// merge reproduces the unsharded order.
func (s *Store) DerivedTargeting(target agraph.NodeRef) []core.DerivedFact {
	var out []core.DerivedFact
	for _, v := range s.Views() {
		out = append(out, v.DerivedTargeting(target)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// DerivedFrom returns the facts derived from one source annotation
// (owner shard; empty if the annotation is unknown).
func (s *Store) DerivedFrom(src uint64) []core.DerivedFact {
	k, ok := s.ownerOfAnnotation(src)
	if !ok {
		return nil
	}
	return s.shardCore(k).View().DerivedFrom(src)
}

// DerivedOnto returns the facts derived onto an annotation. Sources that
// could target it share its routing domain, so the owner shard holds
// them all.
func (s *Store) DerivedOnto(id uint64) ([]core.DerivedFact, error) {
	k, ok := s.ownerOfAnnotation(id)
	if !ok {
		return nil, errNoSuchAnnotation(id)
	}
	return s.shardCore(k).View().DerivedOnto(id)
}

// DerivedSourceEpoch returns the owner shard's derived epoch for src.
func (s *Store) DerivedSourceEpoch(src uint64) uint64 {
	k, ok := s.ownerOfAnnotation(src)
	if !ok {
		return 0
	}
	return s.shardCore(k).View().DerivedSourceEpoch(src)
}

// Query executes one query against every shard and merges the results
// in ID order (annotations, referents) / shard order (subgraphs).
// Planner statistics sum across shards; Order and Strategies report
// shard 0's plan. MaxResults caps each shard's enumeration and the
// merged result is re-capped, so the cap holds but which matches
// survive can differ from the unsharded store.
func (s *Store) Query(ctx context.Context, src string, opts query.Options) (*query.Result, error) {
	n := s.NumShards()
	results := make([]*query.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			proc := query.NewProcessor(s.shardCore(k))
			results[k], errs[k] = proc.ExecuteCtx(ctx, src, opts)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &query.Result{
		Kind: results[0].Kind,
		Stats: query.Stats{
			Order:           results[0].Stats.Order,
			Strategies:      results[0].Stats.Strategies,
			CandidateCounts: map[string]int{},
			Costs:           map[string]float64{},
		},
	}
	for _, r := range results {
		out.Matches = append(out.Matches, r.Matches...)
		out.Annotations = append(out.Annotations, r.Annotations...)
		out.Referents = append(out.Referents, r.Referents...)
		out.Subgraphs = append(out.Subgraphs, r.Subgraphs...)
		out.Stats.Matches += r.Stats.Matches
		out.Stats.BindingsTried += r.Stats.BindingsTried
		for v, c := range r.Stats.CandidateCounts {
			out.Stats.CandidateCounts[v] += c
		}
		for v, c := range r.Stats.Costs {
			out.Stats.Costs[v] += c
		}
	}
	sortByID(out.Annotations)
	sort.Slice(out.Referents, func(i, j int) bool { return out.Referents[i].ID < out.Referents[j].ID })
	if opts.MaxResults > 0 {
		capTo := func(n int) int {
			if n > opts.MaxResults {
				return opts.MaxResults
			}
			return n
		}
		out.Matches = out.Matches[:capTo(len(out.Matches))]
		out.Annotations = out.Annotations[:capTo(len(out.Annotations))]
		out.Referents = out.Referents[:capTo(len(out.Referents))]
		out.Subgraphs = out.Subgraphs[:capTo(len(out.Subgraphs))]
		if out.Stats.Matches > opts.MaxResults {
			out.Stats.Matches = opts.MaxResults
		}
	}
	return out, nil
}

// Export merges the per-shard snapshots into one, ordered exactly as the
// unsharded exporter orders it: every section sorted by its primary key
// (each object is homed on one shard, so concatenation + sort is the
// global sorted order); ontologies and rules from shard 0; ID counters
// the per-shard maxima.
func (s *Store) Export() (*persist.Snapshot, error) {
	n := s.NumShards()
	snaps := make([]*persist.Snapshot, n)
	for k := 0; k < n; k++ {
		snap, err := persist.Export(s.shardCore(k))
		if err != nil {
			return nil, tag(k, err)
		}
		snaps[k] = snap
	}
	out := &persist.Snapshot{
		Version:    persist.Version,
		Ontologies: snaps[0].Ontologies,
		Rules:      snaps[0].Rules,
	}
	for _, snap := range snaps {
		out.Systems = append(out.Systems, snap.Systems...)
		out.Sequences = append(out.Sequences, snap.Sequences...)
		out.Alignments = append(out.Alignments, snap.Alignments...)
		out.Trees = append(out.Trees, snap.Trees...)
		out.Graphs = append(out.Graphs, snap.Graphs...)
		out.Images = append(out.Images, snap.Images...)
		out.RecordTables = append(out.RecordTables, snap.RecordTables...)
		out.Annotations = append(out.Annotations, snap.Annotations...)
		if snap.NextAnn > out.NextAnn {
			out.NextAnn = snap.NextAnn
		}
		if snap.NextRef > out.NextRef {
			out.NextRef = snap.NextRef
		}
	}
	sort.Slice(out.Systems, func(i, j int) bool { return out.Systems[i].Name < out.Systems[j].Name })
	sort.Slice(out.Sequences, func(i, j int) bool { return out.Sequences[i].ID < out.Sequences[j].ID })
	sort.Slice(out.Alignments, func(i, j int) bool { return out.Alignments[i].ID < out.Alignments[j].ID })
	sort.Slice(out.Trees, func(i, j int) bool { return out.Trees[i].ID < out.Trees[j].ID })
	sort.Slice(out.Graphs, func(i, j int) bool { return out.Graphs[i].ID < out.Graphs[j].ID })
	sort.Slice(out.Images, func(i, j int) bool { return out.Images[i].ID < out.Images[j].ID })
	sort.Slice(out.RecordTables, func(i, j int) bool { return out.RecordTables[i].Name < out.RecordTables[j].Name })
	sort.Slice(out.Annotations, func(i, j int) bool { return out.Annotations[i].ID < out.Annotations[j].ID })
	return out, nil
}

// Restore replaces the deployment's entire state with snap: the snapshot
// is partitioned by the same routing keys live mutations use, and each
// shard restores (and, when durable, checkpoints) its partition. Runs
// under the inter-shard channel (excluding broadcasts and cross-shard
// commits) and every shard's writer latch (excluding routed mutations),
// so nothing can be acknowledged into a core this swap replaces — a
// commit concurrent with Restore either completes before the swap and
// is replaced with the rest of the old state, or waits and lands in the
// restored state.
func (s *Store) Restore(snap *persist.Snapshot) error {
	parts := s.partition(snap)
	s.gmu.Lock()
	defer s.gmu.Unlock()
	for k := range s.smu {
		s.smu[k].Lock()
		defer s.smu[k].Unlock()
	}
	s.gseq.Add(1)
	n := s.NumShards()
	if s.durs != nil {
		errs := make([]error, n)
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				_, errs[k] = s.durs[k].Restore(parts[k])
			}(k)
		}
		wg.Wait()
		for k, err := range errs {
			if err != nil {
				return tag(k, err)
			}
		}
		s.advanceIDs()
		return nil
	}
	fresh := make([]*core.Store, n)
	for k := 0; k < n; k++ {
		cs, err := persist.LoadWith(parts[k], core.StoreOptions{Shard: strconv.Itoa(k), IDs: s.ids})
		if err != nil {
			return tag(k, err)
		}
		fresh[k] = cs
	}
	for k := 0; k < n; k++ {
		s.cores[k].Store(fresh[k])
	}
	s.advanceIDs()
	return nil
}

// partition splits a snapshot by routing key. Broadcast sections
// (ontologies, rules) and the ID counters go to every shard.
func (s *Store) partition(snap *persist.Snapshot) []*persist.Snapshot {
	n := s.NumShards()
	parts := make([]*persist.Snapshot, n)
	for k := range parts {
		parts[k] = &persist.Snapshot{
			Version:    snap.Version,
			Ontologies: snap.Ontologies,
			Rules:      snap.Rules,
			NextAnn:    snap.NextAnn,
			NextRef:    snap.NextRef,
		}
	}
	of := func(key string) *persist.Snapshot { return parts[s.router.ShardOfKey(key)] }
	for _, d := range snap.Systems {
		p := of(d.Name)
		p.Systems = append(p.Systems, d)
	}
	for _, d := range snap.Sequences {
		key := d.Domain
		if key == "" {
			key = d.ID
		}
		p := of(key)
		p.Sequences = append(p.Sequences, d)
	}
	for _, d := range snap.Alignments {
		p := of(d.ID)
		p.Alignments = append(p.Alignments, d)
	}
	for _, d := range snap.Trees {
		p := of(d.ID)
		p.Trees = append(p.Trees, d)
	}
	for _, d := range snap.Graphs {
		p := of(d.ID)
		p.Graphs = append(p.Graphs, d)
	}
	for _, d := range snap.Images {
		p := of(d.System)
		p.Images = append(p.Images, d)
	}
	for _, d := range snap.RecordTables {
		p := of(d.Name)
		p.RecordTables = append(p.RecordTables, d)
	}
	for _, d := range snap.Annotations {
		p := parts[s.routeAnnotationDump(d)]
		p.Annotations = append(p.Annotations, d)
	}
	return parts
}

// routeAnnotationDump mirrors routeBuilder for serialized annotations.
func (s *Store) routeAnnotationDump(d persist.AnnotationDump) int {
	for _, rd := range d.Referents {
		return s.router.ShardOfKey(routeKeyOfDump(rd))
	}
	if len(d.Terms) > 0 {
		return s.router.ShardOfKey(d.Terms[0].Ontology)
	}
	return 0
}

// routeKeyOfDump mirrors core.Referent.RouteKey for serialized marks.
func routeKeyOfDump(d persist.ReferentDump) string {
	if core.ReferentKind(d.Kind) == core.ObjectReferent {
		return d.ObjectID
	}
	if d.Domain != "" {
		return d.Domain
	}
	return d.ObjectID
}

// ShardHealth is one shard's durability health, tagged with its ID.
type ShardHealth struct {
	Shard int `json:"shard"`
	durable.Health
}

// Health reports every shard's degradation state (in-memory shards are
// always healthy).
func (s *Store) Health() []ShardHealth {
	out := make([]ShardHealth, s.NumShards())
	for k := range out {
		out[k].Shard = k
		if s.durs != nil {
			out[k].Health = s.durs[k].Health()
		} else {
			out[k].Health = durable.Health{State: durable.StateHealthy}
		}
	}
	return out
}

// DegradedShards lists the shards currently refusing writes.
func (s *Store) DegradedShards() []int {
	var out []int
	for _, h := range s.Health() {
		if h.State != durable.StateHealthy {
			out = append(out, h.Shard)
		}
	}
	return out
}

// Reopen recovers one degraded shard (no-op when healthy or in-memory).
func (s *Store) Reopen(k int) error {
	if s.durs == nil {
		return nil
	}
	_, err := s.durs[k].Reopen()
	if err != nil {
		return tag(k, err)
	}
	s.advanceIDs()
	return nil
}

// DurabilityStats returns the per-shard durability counters (nil for an
// in-memory store).
func (s *Store) DurabilityStats() []durable.Stats {
	if s.durs == nil {
		return nil
	}
	out := make([]durable.Stats, len(s.durs))
	for k, d := range s.durs {
		out[k] = d.Stats()
	}
	return out
}

func sortByID(out []*core.Annotation) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}

func errNoSuchAnnotation(id uint64) error {
	return fmt.Errorf("%w: %d", core.ErrNoSuchAnnotation, id)
}

func errNoSuchReferent(id uint64) error {
	return fmt.Errorf("%w: %d", core.ErrNoSuchReferent, id)
}
