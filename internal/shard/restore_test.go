package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
)

// registerDomainSeq registers a DNA sequence addressed in domain so
// MarkDomainInterval has a covering owner there.
func registerDomainSeq(t *testing.T, s *Store, id, domain string) {
	t.Helper()
	sq, err := seq.New(id, seq.DNA, strings.Repeat("ACGT", 64))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = domain
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreWaitsForRoutedWriters pins the Restore/commit barrier: an
// in-flight routed mutation on any shard blocks the core-pointer swap,
// and a commit issued while Restore is parked waits and lands in the
// restored state — the interleaving that, without the per-shard writer
// latch, could acknowledge a write into a core the swap had already
// replaced.
func TestRestoreWaitsForRoutedWriters(t *testing.T) {
	s := New(2)
	// A domain owned by shard 0 — where the concurrent commit will land.
	dom := ""
	for i := 0; dom == ""; i++ {
		if d := fmt.Sprintf("dom-%d", i); s.router.ShardOfKey(d) == 0 {
			dom = d
		}
	}
	registerDomainSeq(t, s, "live-seq", dom)

	// The snapshot to restore: one committed annotation, plus dom's
	// sequence so the concurrent commit's mark stays covered afterwards.
	src := New(1)
	registerDomainSeq(t, src, "seed-seq", "seed-dom")
	registerDomainSeq(t, src, "live-seq", dom)
	seedRef, err := src.MarkDomainInterval("seed-dom", interval.Interval{Lo: 0, Hi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Commit(core.NewBuilder().Creator("tester").Date("2026-08-08").Body("seed").Refer(seedRef)); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}

	r, err := s.MarkDomainInterval(dom, interval.Interval{Lo: 10, Hi: 20})
	if err != nil {
		t.Fatal(err)
	}

	// A routed writer in flight on shard 1 must park Restore on that
	// shard's latch.
	s.smu[1].RLock()
	restored := make(chan error, 1)
	go func() { restored <- s.Restore(snap) }()
	select {
	case err := <-restored:
		t.Fatalf("Restore completed under an in-flight shard writer: err=%v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// A commit routed to shard 0 — whose write latch the parked Restore
	// already holds — must wait for the swap, not slip into the core
	// about to be replaced.
	acked := make(chan uint64, 1)
	cerr := make(chan error, 1)
	go func() {
		ann, err := s.Commit(core.NewBuilder().Creator("tester").Date("2026-08-08").Body("during-restore").Refer(r))
		if err != nil {
			cerr <- err
			return
		}
		acked <- ann.ID
	}()
	select {
	case id := <-acked:
		t.Fatalf("commit %d acknowledged while Restore held the shard latches", id)
	case err := <-cerr:
		t.Fatalf("commit during parked restore: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	s.smu[1].RUnlock()
	if err := <-restored; err != nil {
		t.Fatalf("restore: %v", err)
	}
	var id uint64
	select {
	case id = <-acked:
	case err := <-cerr:
		t.Fatalf("commit after restore released: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("commit never completed after restore finished")
	}
	// The acknowledged commit is in the restored state, alongside the
	// snapshot's seed annotation.
	if _, err := s.Annotation(id); err != nil {
		t.Fatalf("annotation %d acknowledged after restore is not visible: %v", id, err)
	}
	if got := len(s.Annotations()); got != 2 {
		t.Fatalf("annotations after restore+commit = %d, want 2 (seed + concurrent)", got)
	}
}
