package shard

import (
	"strconv"
	"sync/atomic"
	"time"

	"graphitti/internal/obs"
	"graphitti/internal/trace"
)

// Per-shard load profiling: every routed mutation records which shard it
// ran on, how long the shard's writer was busy with it, and which
// routing key placed it there. Busy time and mutation counts are plain
// atomics; routing keys feed a space-saving top-K sketch (trace.TopK),
// so the answer to "which keys dominate this shard" costs topKeys
// counters of memory, not one per distinct key. This is the placement
// signal the ROADMAP's shard-rebalancing item consumes: a hot shard
// (busy time far above its peers) plus its dominating keys tells the
// operator — and eventually the rebalancer — exactly which domains to
// move.
//
// The metrics side is collector-synced: graphitti_shard_busy_micros is
// set and graphitti_shard_top_key_ops is Reset-and-refilled at scrape
// time from the newest store's profile, keeping the exposed key series
// exactly the sketch's current contents.

// topKeys is the sketch width per shard: enough to name a shard's
// dominating routing domains without unbounded label cardinality.
const topKeys = 8

var (
	mShardBusy = obs.NewGaugeVec("graphitti_shard_busy_micros",
		"Cumulative microseconds each shard's writer spent applying routed mutations.",
		"shard")
	mShardTopKeys = obs.NewGaugeVec("graphitti_shard_top_key_ops",
		"Estimated mutation count of each shard's top routing keys (space-saving sketch; reset to the current sketch contents at every scrape).",
		"shard", "key")
)

// currentLoad is the profile the metrics collector renders: the most
// recently created Store's (one store per process in deployment; tests
// that build many just see the newest, like every other gauge here).
var currentLoad atomic.Pointer[loadProfile]

func init() {
	obs.Default.RegisterCollector(func() {
		lp := currentLoad.Load()
		mShardTopKeys.Reset()
		if lp == nil {
			return
		}
		for k := range lp.shards {
			sh := &lp.shards[k]
			label := strconv.Itoa(k)
			mShardBusy.With(label).Set(sh.busyNanos.Load() / 1e3)
			for _, kc := range sh.keys.Top() {
				mShardTopKeys.With(label, kc.Key).Set(int64(kc.Count))
			}
		}
	})
}

type shardLoad struct {
	busyNanos atomic.Int64
	mutations atomic.Uint64
	keys      *trace.TopK
}

type loadProfile struct {
	shards []shardLoad
}

func newLoadProfile(n int) *loadProfile {
	lp := &loadProfile{shards: make([]shardLoad, n)}
	for k := range lp.shards {
		lp.shards[k].keys = trace.NewTopK(topKeys)
	}
	currentLoad.Store(lp)
	return lp
}

// record charges one routed mutation to shard k: d of writer busy time
// and (when non-empty) its routing key.
func (lp *loadProfile) record(k int, key string, d time.Duration) {
	if lp == nil || k < 0 || k >= len(lp.shards) {
		return
	}
	sh := &lp.shards[k]
	sh.busyNanos.Add(d.Nanoseconds())
	sh.mutations.Add(1)
	sh.keys.Record(key)
}

// ShardLoad is one shard's load profile as /api/stats reports it.
type ShardLoad struct {
	Shard      int              `json:"shard"`
	Mutations  uint64           `json:"mutations"`
	BusyMicros int64            `json:"busy_micros"`
	TopKeys    []trace.KeyCount `json:"top_keys,omitempty"`
}

// LoadStats returns the per-shard load profile: mutation counts, writer
// busy time, and the top routing keys by estimated mutation count.
func (s *Store) LoadStats() []ShardLoad {
	out := make([]ShardLoad, s.NumShards())
	for k := range out {
		sh := &s.load.shards[k]
		out[k] = ShardLoad{
			Shard:      k,
			Mutations:  sh.mutations.Load(),
			BusyMicros: sh.busyNanos.Load() / 1e3,
			TopKeys:    sh.keys.Top(),
		}
	}
	return out
}
