package shard_test

// The differential property test: one deterministic op stream, applied
// serially to an unsharded in-memory store and to sharded stores of
// 1..4 shards, must produce byte-identical merged exports — same IDs,
// same derived facts, same provenance — plus identical stats and search
// answers. This is the exactness contract for the supported workload
// class (each annotation's marks within one routing domain).

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/persist"
	"graphitti/internal/shard"
	"graphitti/internal/workload"
)

func exportJSON(t *testing.T, snap *persist.Snapshot) []byte {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestShardedDifferentialExport(t *testing.T) {
	scenarios := []struct {
		name string
		ops  []workload.RecoveryOp
	}{
		{"recovery", workload.RecoveryScenario(workload.DefaultRecovery)},
		{"sharded-spread", workload.ShardedScenario(workload.RecoveryConfig{Seed: 7, Images: 8, Ops: 350}, 4)},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			want := core.NewStore()
			if err := workload.ApplyOps(workload.AsSink(want), sc.ops); err != nil {
				t.Fatalf("unsharded apply: %v", err)
			}
			wantSnap, err := persist.Export(want)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON := exportJSON(t, wantSnap)

			for n := 1; n <= 4; n++ {
				s := shard.New(n)
				if err := workload.ApplyOps(s, sc.ops); err != nil {
					t.Fatalf("n=%d sharded apply: %v", n, err)
				}
				gotSnap, err := s.Export()
				if err != nil {
					t.Fatalf("n=%d export: %v", n, err)
				}
				if gotJSON := exportJSON(t, gotSnap); !bytes.Equal(gotJSON, wantJSON) {
					t.Errorf("n=%d merged export diverged from unsharded store", n)
					diffSnapshots(t, gotSnap, wantSnap)
					continue
				}
				if g, w := s.Stats(), want.Stats(); g != w {
					t.Errorf("n=%d stats diverged:\n got %+v\nwant %+v", n, g, w)
				}
				if g, w := s.DerivedAll(), want.DerivedAll(); !reflect.DeepEqual(g, w) {
					t.Errorf("n=%d derived facts diverged: %d vs %d", n, len(g), len(w))
				}
				for _, ann := range want.Annotations() {
					target := agraph.ContentRoot(ann.ID)
					g := s.DerivedTargeting(target)
					w := want.DerivedTargeting(target)
					if !reflect.DeepEqual(g, w) {
						t.Errorf("n=%d provenance of annotation %d diverged: got %v want %v",
							n, ann.ID, g, w)
					}
				}
				if g, w := annIDs(s.SearchKeyword("protein.TP53", true)), annIDs(want.SearchKeyword("protein.TP53", true)); !reflect.DeepEqual(g, w) {
					t.Errorf("n=%d keyword search diverged: got %v want %v", n, g, w)
				}
				gc, err := s.SearchContents("contains(/annotation/body, 'Cerebellar')")
				if err != nil {
					t.Fatalf("n=%d contents search: %v", n, err)
				}
				wc, err := want.View().SearchContents("contains(/annotation/body, 'Cerebellar')")
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(annIDs(gc), annIDs(wc)) {
					t.Errorf("n=%d contents search diverged: got %v want %v", n, annIDs(gc), annIDs(wc))
				}
				if g, w := annIDs(s.Annotations()), annIDs(want.Annotations()); !reflect.DeepEqual(g, w) {
					t.Errorf("n=%d annotation list diverged", n)
				}
			}
		})
	}
}

// TestShardedRestoreRoundTrip: a merged export restored into a fresh
// sharded store (any shard count) must export identically — the
// partition function is an inverse of the merge.
func TestShardedRestoreRoundTrip(t *testing.T) {
	ops := workload.ShardedScenario(workload.RecoveryConfig{Seed: 11, Images: 6, Ops: 250}, 3)
	src := shard.New(3)
	if err := workload.ApplyOps(src, ops); err != nil {
		t.Fatal(err)
	}
	snap, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := exportJSON(t, snap)
	for n := 1; n <= 4; n++ {
		dst := shard.New(n)
		if err := dst.Restore(snap); err != nil {
			t.Fatalf("n=%d restore: %v", n, err)
		}
		got, err := dst.Export()
		if err != nil {
			t.Fatalf("n=%d re-export: %v", n, err)
		}
		if !bytes.Equal(exportJSON(t, got), wantJSON) {
			t.Errorf("n=%d restore round-trip diverged", n)
			diffSnapshots(t, got, snap)
		}
		// Restored stores must keep allocating fresh IDs above the
		// snapshot's counters.
		b := dst.NewAnnotation().Creator("x").Date("2008-01-01").Body("post-restore probe")
		b.OntologyRef("nif", "cerebellum")
		ann, err := dst.Commit(b)
		if err != nil {
			t.Fatalf("n=%d post-restore commit: %v", n, err)
		}
		if ann.ID < snap.NextAnn {
			t.Errorf("n=%d post-restore annotation ID %d below counter %d", n, ann.ID, snap.NextAnn)
		}
	}
}

func diffSnapshots(t *testing.T, got, want *persist.Snapshot) {
	t.Helper()
	report := func(name string, g, w any) {
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Logf("section %s diverged:\n got %.2000s\nwant %.2000s", name, gj, wj)
		}
	}
	report("Ontologies", got.Ontologies, want.Ontologies)
	report("Rules", got.Rules, want.Rules)
	report("Systems", got.Systems, want.Systems)
	report("Sequences", got.Sequences, want.Sequences)
	report("Alignments", got.Alignments, want.Alignments)
	report("Trees", got.Trees, want.Trees)
	report("Graphs", got.Graphs, want.Graphs)
	report("Images", got.Images, want.Images)
	report("RecordTables", got.RecordTables, want.RecordTables)
	report("Annotations", got.Annotations, want.Annotations)
	report("NextAnn", got.NextAnn, want.NextAnn)
	report("NextRef", got.NextRef, want.NextRef)
}

func annIDs(anns []*core.Annotation) []uint64 {
	ids := make([]uint64, 0, len(anns))
	for _, a := range anns {
		ids = append(ids, a.ID)
	}
	return ids
}
