package shard_test

// The sharded crash harness: a child process drives the spread recovery
// scenario into a 2-shard durable store (each shard its own WAL segment
// and snapshot chain), the parent SIGKILLs it mid-stream, reopens the
// directory (parallel per-shard replay), and checks the recovered
// deployment equals an UNSHARDED in-memory store fed the recovered op
// prefix — stats, merged export, derived facts, provenance, and the
// paper's Q1 query.
//
// The recovered global prefix length K is found by inverting
// sum(per-shard seq) = K + (shards-1)·B(K), where B(K) counts broadcast
// ops among the first K: a broadcast lands on every shard's log, a
// routed op on exactly one, and serial application (each durable ack
// blocking the next op) makes the surviving state a prefix. The parent
// only kills after the broadcast setup prefix, so no kill lands between
// the per-shard applications of one broadcast.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"graphitti"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/persist"
	"graphitti/internal/shard"
	"graphitti/internal/workload"
)

const (
	shardCrashChildEnv     = "GRAPHITTI_SHARD_CRASH_CHILD"
	shardCrashDirEnv       = "GRAPHITTI_SHARD_CRASH_DIR"
	shardCrashThresholdEnv = "GRAPHITTI_SHARD_CRASH_THRESHOLD"
	shardCrashShards       = 2
)

func shardCrashOps() []workload.RecoveryOp {
	return workload.ShardedScenario(workload.RecoveryConfig{Seed: 19, Images: 8, Ops: 400}, 4)
}

// TestShardCrashChild is the child-process body; the parent re-executes
// the test binary with the env set and kills it partway.
func TestShardCrashChild(t *testing.T) {
	if os.Getenv(shardCrashChildEnv) != "1" {
		t.Skip("crash-harness child helper; run via TestShardedCrashRecovery")
	}
	threshold, err := strconv.ParseInt(os.Getenv(shardCrashThresholdEnv), 10, 64)
	if err != nil {
		t.Fatalf("bad threshold: %v", err)
	}
	s, err := shard.Open(os.Getenv(shardCrashDirEnv), shardCrashShards,
		durable.Options{CompactThreshold: threshold})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	// Never closed: the parent kills us; the next Open must recover.
	for _, op := range shardCrashOps() {
		if err := op.Apply(s); err != nil {
			t.Fatalf("child op %d (%s): %v", op.Seq, op.Name, err)
		}
		fmt.Printf("acked %d\n", op.Seq)
	}
	fmt.Println("done")
}

func TestShardedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash gauntlet; CI's sharding job runs it explicitly")
	}
	ops := shardCrashOps()
	setup := workload.BroadcastPrefixLen(ops)
	cases := []struct {
		name          string
		killAfter     int
		threshold     int64
		wantCompacted bool
	}{
		{name: "early-no-compaction", killAfter: setup + 20, threshold: 64 << 20},
		{name: "after-compaction", killAfter: 330, threshold: 16 << 10, wantCompacted: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			acked := runAndKillShardChild(t, dir, tc.threshold, tc.killAfter)

			// Adopt the recorded shard count (0): the layout is
			// self-describing via SHARDS.json.
			s, err := shard.Open(dir, 0, durable.Options{CompactThreshold: tc.threshold})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer s.Close()
			if got := s.NumShards(); got != shardCrashShards {
				t.Fatalf("recovered %d shards, wrote %d", got, shardCrashShards)
			}
			for k := 0; k < shardCrashShards; k++ {
				if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", k))); err != nil {
					t.Fatalf("missing per-shard directory: %v", err)
				}
			}

			sts := s.DurabilityStats()
			var sum, compacted uint64
			for k, st := range sts {
				sum += st.Seq
				if st.SnapshotSeq > 0 {
					compacted++
				}
				t.Logf("shard %d: seq=%d snapshotSeq=%d replayed=%d torn=%d",
					k, st.Seq, st.SnapshotSeq, st.ReplayedRecords, st.TornBytes)
			}
			if tc.wantCompacted && compacted == 0 {
				t.Fatal("expected at least one shard to have checkpointed pre-crash")
			}

			k := recoveredPrefix(t, ops, int(sum), shardCrashShards)
			t.Logf("child acked %d ops; recovered global prefix %d", acked, k)
			// Durability contract: every acknowledged op survives.
			if k < acked {
				t.Fatalf("recovered only %d ops but child acked %d — lost acknowledged writes", k, acked)
			}

			want := core.NewStore()
			if err := workload.ApplyOps(workload.AsSink(want), ops[:k]); err != nil {
				t.Fatalf("building expected store: %v", err)
			}

			if g, w := s.Stats(), want.Stats(); g != w {
				t.Fatalf("stats diverged after replay:\n got %+v\nwant %+v", g, w)
			}
			gotSnap, err := s.Export()
			if err != nil {
				t.Fatal(err)
			}
			wantSnap, err := persist.Export(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, _ := json.Marshal(gotSnap)
			wantJSON, _ := json.Marshal(wantSnap)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatal("merged export diverged from unsharded replay")
			}
			if !reflect.DeepEqual(s.DerivedAll(), want.DerivedAll()) {
				t.Fatalf("derived facts diverged: %d vs %d",
					len(s.DerivedAll()), len(want.DerivedAll()))
			}

			// Q1 parity via the merged snapshot re-materialized as one store.
			merged, err := persist.Load(gotSnap)
			if err != nil {
				t.Fatalf("loading merged export: %v", err)
			}
			gotQ, err := graphitti.QueryTP53Images(merged, graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantQ, err := graphitti.QueryTP53Images(want, graphitti.TP53Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotQ.QualifyingImages, wantQ.QualifyingImages) {
				t.Fatalf("Q1 qualifying images diverged: got %v want %v",
					gotQ.QualifyingImages, wantQ.QualifyingImages)
			}
			if !reflect.DeepEqual(gotQ.RegionCounts, wantQ.RegionCounts) {
				t.Fatalf("Q1 region counts diverged: got %v want %v",
					gotQ.RegionCounts, wantQ.RegionCounts)
			}
		})
	}
}

// recoveredPrefix inverts sum = K + (shards-1)·B(K). The map K → sum is
// strictly increasing, so the match is unique; no match means the crash
// split a broadcast across shards, which the kill threshold rules out.
func recoveredPrefix(t *testing.T, ops []workload.RecoveryOp, sum, shards int) int {
	t.Helper()
	broadcasts := 0
	if sum == 0 {
		return 0
	}
	for i, op := range ops {
		if strings.HasPrefix(op.Name, "register-ontology") ||
			strings.HasPrefix(op.Name, "add-rule") ||
			strings.HasPrefix(op.Name, "delete-rule") {
			broadcasts++
		}
		k := i + 1
		if got := k + (shards-1)*broadcasts; got == sum {
			return k
		} else if got > sum {
			break
		}
	}
	t.Fatalf("per-shard sequence sum %d matches no op prefix (broadcast torn across shards?)", sum)
	return 0
}

func runAndKillShardChild(t *testing.T, dir string, threshold int64, killAfter int) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestShardCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		shardCrashChildEnv+"=1",
		shardCrashDirEnv+"="+dir,
		shardCrashThresholdEnv+"="+strconv.FormatInt(threshold, 10),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked, done := 0, false
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if n, ok := strings.CutPrefix(sc.Text(), "acked "); ok {
			if v, err := strconv.Atoi(n); err == nil && v > acked {
				acked = v
			}
			if acked >= killAfter && !done {
				done = true
				if err := cmd.Process.Kill(); err != nil {
					t.Fatalf("kill child: %v", err)
				}
			}
		}
	}
	_ = cmd.Wait() // killed: non-zero exit is expected
	if acked < killAfter {
		t.Fatalf("child exited after only %d acks, wanted to kill at %d", acked, killAfter)
	}
	return acked
}
