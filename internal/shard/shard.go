// Package shard runs N independent Graphitti writer pipelines behind one
// router, so commits to disjoint coordinate domains spend separate cores
// instead of funnelling through a single serialized writer.
//
// Placement. Every mutation is routed by a stable key (core.Router,
// FNV-1a): sequences by coordinate domain, coordinate systems by name,
// images by their system, alignments/trees/interaction graphs by ID,
// record tables by name, and annotations by their first mark's route key
// (see core.Referent.RouteKey). Domain-keyed placement keeps the
// propagation engine exact without cross-shard evaluation: SUB_X overlap
// is intra-domain, co-registration is intra-system, and shared-referent
// hops are intra-shard because identical marks always route identically.
// Ontologies and propagation rules are broadcast to every shard (shard 0
// first), so ontology-closure propagation and rule recomputation see the
// same rule set everywhere.
//
// The sequenced inter-shard channel. Broadcasts and cross-shard commits
// (an annotation whose marks span shards) serialize through one global
// mutex with a monotone sequence number — the bounded fallback the
// design allows instead of asynchronous delta shipping. A cross-shard
// annotation commits whole to its home shard (no dangling references, no
// partial visibility); the completeness bound is that its marks dedup
// per-shard rather than globally, and derived facts pairing it with
// referents homed elsewhere are not materialized. Reusing an
// already-committed referent is stricter: a committed referent homed on
// a shard other than the annotation's home shard is refused up front
// with ErrCrossShardReferent (the home shard cannot validate or link a
// referent it does not hold) — re-mark the location, or keep shared
// referents within one routing domain. Workloads that keep
// each annotation's marks in one routing domain — the paper's studies
// all do — get semantics identical to the unsharded store, which the
// differential export test asserts byte-for-byte.
//
// IDs. All shards share one core.AtomicIDs allocator, so annotation and
// referent IDs are globally unique and merged reads can order by ID.
// Reads pin one view per shard and merge deterministically in ID order.
//
// Durability. Each shard owns a full durable pipeline (WAL segment,
// snapshot chain, degradation state machine) under dir/shard-<k>/;
// SHARDS.json at the root pins the shard count. Recovery replays all
// shards in parallel. A degraded shard refuses its own writes — wrapped
// in *Error so callers can name the shard — while healthy shards keep
// accepting theirs.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/prop"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
)

// shardsFile pins the shard count of a durable data directory; opening
// with a different count would scatter routing keys across the wrong
// WALs.
const shardsFile = "SHARDS.json"

type shardsManifest struct {
	Shards int `json:"shards"`
}

// Error tags a failed shard operation with the shard that refused it, so
// a partially degraded deployment can name the broken pipeline while the
// rest keep writing. Unwrap exposes the underlying error (errors.Is with
// durable.ErrDegraded keeps working).
type Error struct {
	Shard int
	Err   error
}

func (e *Error) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// ErrCrossShardReferent rejects an annotation that reuses a committed
// referent homed on a different shard than the annotation's own home
// shard (its first mark's): the home shard's core cannot validate or
// link a referent it does not hold. Re-mark the location instead of
// reusing the committed referent, or keep shared referents within one
// routing domain so they co-home.
var ErrCrossShardReferent = errors.New("shard: committed referent homed on another shard")

// Store is a sharded Graphitti store: N independent writer pipelines
// (in-memory or durable) behind a router. All methods are safe for
// concurrent use.
type Store struct {
	router core.Router
	ids    *core.AtomicIDs

	// Exactly one of cores/durs is set: cores for in-memory shards
	// (atomic so Restore can swap them under readers), durs for durable
	// ones (whose core stores are reached via Core(), which Reopen and
	// Restore swap).
	cores []atomic.Pointer[core.Store]
	durs  []*durable.Store

	// gmu is the sequenced inter-shard channel: broadcasts (ontologies,
	// rules) and cross-shard commits serialize through it, stamped by
	// gseq. Routed single-shard mutations never take it.
	gmu   sync.Mutex
	gseq  atomic.Uint64
	cross atomic.Uint64

	// smu is the per-shard writer latch: every routed mutation holds its
	// shard's latch in read mode across load-and-apply, and Restore holds
	// all of them in write mode across its core-pointer swap, so a
	// mutation can never be acknowledged into a core the swap has already
	// replaced. Broadcasts don't need it — they serialize against Restore
	// through gmu. Read acquisition is uncontended outside a restore.
	smu []sync.RWMutex

	// load profiles every routed mutation: per-shard busy time and a
	// top-K sketch of routing keys (see load.go).
	load *loadProfile
}

// New returns an in-memory sharded store with n writer pipelines
// (n < 1 is treated as 1).
func New(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{router: core.Router{Shards: n}, ids: &core.AtomicIDs{},
		smu: make([]sync.RWMutex, n), load: newLoadProfile(n)}
	s.cores = make([]atomic.Pointer[core.Store], n)
	for k := 0; k < n; k++ {
		s.cores[k].Store(core.NewStoreWithOptions(core.StoreOptions{
			Shard: strconv.Itoa(k), IDs: s.ids,
		}))
	}
	return s
}

// Open opens (or initialises) a durable sharded store under dir with n
// shards, replaying all shard WALs in parallel. A directory that was
// created with a different shard count refuses to open — routing keys
// would land in the wrong segments; n = 0 adopts the directory's
// recorded count (1 for a fresh directory).
func Open(dir string, n int, opts durable.Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	recorded, err := readShardsFile(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case recorded == 0:
		// No manifest: only a directory with no prior store state may be
		// initialised sharded — anything else would silently ignore (and
		// then fork) the data already there.
		if err := checkDirFresh(dir); err != nil {
			return nil, err
		}
		// Record the count before any shard writes.
		if n == 0 {
			n = 1
		}
		if err := writeShardsFile(dir, n); err != nil {
			return nil, err
		}
	case n == 0:
		n = recorded
	case n != recorded:
		return nil, fmt.Errorf("shard: directory %s has %d shards, asked to open %d", dir, recorded, n)
	}

	s := &Store{router: core.Router{Shards: n}, ids: &core.AtomicIDs{},
		smu: make([]sync.RWMutex, n), load: newLoadProfile(n)}
	s.durs = make([]*durable.Store, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			o := opts
			o.Store = core.StoreOptions{Shard: strconv.Itoa(k), IDs: s.ids}
			s.durs[k], errs[k] = durable.Open(filepath.Join(dir, shardDir(k)), o)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			for _, d := range s.durs {
				if d != nil {
					_ = d.Close()
				}
			}
			return nil, &Error{Shard: k, Err: err}
		}
	}
	s.advanceIDs()
	return s, nil
}

func shardDir(k int) string { return fmt.Sprintf("shard-%d", k) }

func readShardsFile(dir string) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, shardsFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var m shardsManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("shard: corrupt %s: %w", shardsFile, err)
	}
	if m.Shards < 1 {
		return 0, fmt.Errorf("shard: %s records %d shards", shardsFile, m.Shards)
	}
	return m.Shards, nil
}

// checkDirFresh refuses to lay a sharded store over a directory that
// already holds state a manifest-less Open would otherwise silently
// ignore: a legacy unsharded durable store (its WAL/snapshots would be
// bypassed while shard-<k>/ dirs grow beside them), or shard-<k>/
// subdirectories whose SHARDS.json was lost (re-pinning a guessed count
// would hide or mis-route their data).
func checkDirFresh(dir string) error {
	if durable.HasStore(dir) {
		return fmt.Errorf("shard: directory %s holds an unsharded durable store; open it without -shards, or migrate it via snapshot export/restore", dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			return fmt.Errorf("shard: directory %s has %s but no %s; restore the manifest with the original shard count instead of re-initialising", dir, e.Name(), shardsFile)
		}
	}
	return nil
}

func writeShardsFile(dir string, n int) error {
	data, err := json.Marshal(shardsManifest{Shards: n})
	if err != nil {
		return err
	}
	// tmp → fsync → rename → fsync(dir): the manifest is what makes
	// shard-<k>/ data discoverable, so it must survive a crash as
	// reliably as the data it names.
	tmp := filepath.Join(dir, shardsFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, shardsFile)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// advanceIDs raises the shared allocator past every ID any shard has
// assigned (the recovery path: replay pins IDs without allocating).
func (s *Store) advanceIDs() {
	var maxAnn, maxRef uint64
	for _, v := range s.Views() {
		na, nr := v.IDCounters()
		if na > maxAnn {
			maxAnn = na
		}
		if nr > maxRef {
			maxRef = nr
		}
	}
	s.ids.Advance(maxAnn, maxRef)
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return s.router.Shards }

// Durable reports whether the store persists (was built by Open).
func (s *Store) Durable() bool { return s.durs != nil }

// DeltaSeq returns the sequence number of the inter-shard channel: the
// count of broadcasts and cross-shard commits sequenced so far.
func (s *Store) DeltaSeq() uint64 { return s.gseq.Load() }

// CrossShardCommits counts annotations whose marks spanned shards and
// were serialized through the inter-shard channel.
func (s *Store) CrossShardCommits() uint64 { return s.cross.Load() }

// shardCore returns shard k's current core store.
func (s *Store) shardCore(k int) *core.Store {
	if s.durs != nil {
		return s.durs[k].Core()
	}
	return s.cores[k].Load()
}

// mutator is the mutation surface shared by *core.Store and
// *durable.Store; rule ops differ and are handled explicitly.
type mutator interface {
	RegisterOntology(*ontology.Ontology) error
	RegisterCoordinateSystem(*imaging.CoordinateSystem) error
	RegisterSequence(*seq.Sequence) error
	RegisterAlignment(*msa.Alignment) error
	RegisterTree(*phylo.Tree) error
	RegisterInteractionGraph(*interact.Graph) error
	RegisterImage(*imaging.Image) error
	CreateRecordTable(*relstore.Schema) (*relstore.Table, error)
	InsertRecord(string, relstore.Row) error
	Commit(*core.Builder) (*core.Annotation, error)
	DeleteAnnotation(uint64) error
}

func (s *Store) pipe(k int) mutator {
	if s.durs != nil {
		return s.durs[k]
	}
	return s.cores[k].Load()
}

// tag wraps a shard's error with its shard ID; nil stays nil.
func tag(k int, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Shard: k, Err: err}
}

// mutate applies one routed mutation to shard k under the shard's
// writer latch (see smu), tagging any error with the shard ID. key is
// the routing key that placed the mutation here; it feeds the shard's
// load profile along with the mutation's busy time ("" records time
// but no key).
func (s *Store) mutate(k int, key string, fn func(m mutator) error) error {
	s.smu[k].RLock()
	defer s.smu[k].RUnlock()
	start := time.Now()
	err := fn(s.pipe(k))
	s.load.record(k, key, time.Since(start))
	return tag(k, err)
}

// broadcast applies one mutation to every shard, shard 0 first, under
// the sequenced inter-shard channel. A real failure on one shard stops
// the walk (later shards are not touched), but an "already applied"
// answer — duplicate registration, duplicate rule, rule already gone —
// is skipped and remembered instead: a crash between the per-shard
// applications of one broadcast leaves it on a prefix of the shards,
// and re-issuing it after recovery must converge the rest rather than
// abort on the shards that already have it. Only if EVERY shard
// reports already-applied is that error returned, which is exactly the
// answer an unsharded store gives to a true duplicate.
func (s *Store) broadcast(fn func(k int) error) error {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	s.gseq.Add(1)
	var dup error
	dups := 0
	for k := 0; k < s.NumShards(); k++ {
		err := fn(k)
		switch {
		case err == nil:
		case errors.Is(err, core.ErrDuplicate),
			errors.Is(err, prop.ErrDuplicateRule),
			errors.Is(err, prop.ErrNoSuchRule):
			dup, dups = tag(k, err), dups+1
		default:
			return tag(k, err)
		}
	}
	if dups == s.NumShards() {
		return dup
	}
	return nil
}

// RegisterOntology broadcasts the ontology to every shard: term-closure
// propagation and commit-time term validation are shard-local.
func (s *Store) RegisterOntology(o *ontology.Ontology) error {
	return s.broadcast(func(k int) error { return s.pipe(k).RegisterOntology(o) })
}

// AddRule broadcasts a propagation rule to every shard, so each shard's
// engine derives over its own annotations with the full rule set.
func (s *Store) AddRule(r prop.Rule) error {
	return s.broadcast(func(k int) error {
		if s.durs != nil {
			return s.durs[k].AddRule(r)
		}
		return prop.Attach(s.cores[k].Load()).AddRule(r)
	})
}

// DeleteRule broadcasts a rule deletion to every shard.
func (s *Store) DeleteRule(id string) error {
	return s.broadcast(func(k int) error {
		if s.durs != nil {
			return s.durs[k].DeleteRule(id)
		}
		return prop.Attach(s.cores[k].Load()).DeleteRule(id)
	})
}

// Rules returns the installed propagation rules (identical on every
// shard; read from shard 0).
func (s *Store) Rules() []prop.Rule { return prop.RulesOf(s.shardCore(0)) }

// RegisterCoordinateSystem routes by system name; the system's images
// and their region marks follow it to the same shard.
func (s *Store) RegisterCoordinateSystem(cs *imaging.CoordinateSystem) error {
	k := s.router.ShardOfKey(cs.Name)
	return s.mutate(k, cs.Name, func(m mutator) error { return m.RegisterCoordinateSystem(cs) })
}

// RegisterSequence routes by coordinate domain, so all sequences of one
// domain — and every interval mark in it — share a shard.
func (s *Store) RegisterSequence(sq *seq.Sequence) error {
	key := sq.Domain
	if key == "" {
		key = sq.ID // core adopts the ID as the domain
	}
	k := s.router.ShardOfKey(key)
	return s.mutate(k, key, func(m mutator) error { return m.RegisterSequence(sq) })
}

// RegisterAlignment routes by alignment ID.
func (s *Store) RegisterAlignment(a *msa.Alignment) error {
	k := s.router.ShardOfKey(a.ID)
	return s.mutate(k, a.ID, func(m mutator) error { return m.RegisterAlignment(a) })
}

// RegisterTree routes by tree ID.
func (s *Store) RegisterTree(t *phylo.Tree) error {
	k := s.router.ShardOfKey(t.ID)
	return s.mutate(k, t.ID, func(m mutator) error { return m.RegisterTree(t) })
}

// RegisterInteractionGraph routes by graph ID.
func (s *Store) RegisterInteractionGraph(g *interact.Graph) error {
	k := s.router.ShardOfKey(g.ID)
	return s.mutate(k, g.ID, func(m mutator) error { return m.RegisterInteractionGraph(g) })
}

// RegisterImage routes by the image's coordinate system, co-locating it
// with the system and every other image registered into it (which keeps
// co-registration propagation intra-shard).
func (s *Store) RegisterImage(im *imaging.Image) error {
	k := s.router.ShardOfKey(im.System)
	return s.mutate(k, im.System, func(m mutator) error { return m.RegisterImage(im) })
}

// CreateRecordTable routes by table name.
func (s *Store) CreateRecordTable(schema *relstore.Schema) (*relstore.Table, error) {
	k := s.router.ShardOfKey(schema.Name)
	var tbl *relstore.Table
	err := s.mutate(k, schema.Name, func(m mutator) error {
		var err error
		tbl, err = m.CreateRecordTable(schema)
		return err
	})
	return tbl, err
}

// InsertRecord routes by table name.
func (s *Store) InsertRecord(table string, row relstore.Row) error {
	k := s.router.ShardOfKey(table)
	return s.mutate(k, table, func(m mutator) error { return m.InsertRecord(table, row) })
}

// NewAnnotation starts a store-free builder; Commit picks the shard from
// the attached marks.
func (s *Store) NewAnnotation() *core.Builder { return core.NewBuilder() }

// Commit routes the annotation to its home shard — the owner of its
// first mark's routing key (first term's ontology for term-only
// annotations). An annotation whose marks span shards serializes through
// the inter-shard channel and still commits whole to the home shard; see
// the package comment for the exact semantics.
func (s *Store) Commit(b *core.Builder) (*core.Annotation, error) {
	rsp := b.Span().StartChild("router")
	home, span, homeKey, err := s.routeBuilder(b)
	rsp.Finish()
	if err != nil {
		return nil, err
	}
	rsp.SetAttrInt("home", int64(home))
	rsp.SetAttrInt("span", int64(span))
	rsp.SetAttr("key", homeKey)
	if span > 1 {
		s.gmu.Lock()
		defer s.gmu.Unlock()
		s.gseq.Add(1)
		s.cross.Add(1)
	}
	// The "shard.writer" span covers the per-shard pipeline end to end —
	// latch, core commit, WAL ack. Downstream layers (core, durable, WAL)
	// read the builder's span, so re-point it at this child for the
	// duration and restore the root after.
	root := b.Span()
	wsp := root.StartChild("shard.writer")
	wsp.SetShard(home)
	b.SetSpan(wsp)
	var ann *core.Annotation
	err = s.mutate(home, homeKey, func(m mutator) error {
		var err error
		ann, err = m.Commit(b)
		return err
	})
	b.SetSpan(root)
	wsp.Finish()
	return ann, err
}

// routeBuilder resolves the builder's home shard, how many distinct
// shards its marks touch, and the routing key that picked the home
// (the first mark's route key, or the first term's ontology) — the key
// the load profile attributes the commit to.
func (s *Store) routeBuilder(b *core.Builder) (home, span int, homeKey string, err error) {
	home = -1
	var seen [64]bool // shard counts are small; avoids a map per commit
	var seenMap map[int]bool
	mark := func(k int) {
		if home == -1 {
			home = k
		}
		if k < len(seen) {
			if !seen[k] {
				seen[k] = true
				span++
			}
			return
		}
		if seenMap == nil {
			seenMap = make(map[int]bool)
		}
		if !seenMap[k] {
			seenMap[k] = true
			span++
		}
	}
	type owned struct {
		id    uint64
		shard int
	}
	var committed []owned
	for _, r := range b.Referents() {
		if r == nil {
			continue // commit reports the builder error
		}
		if homeKey == "" {
			homeKey = r.RouteKey()
		}
		if r.ID != 0 {
			k, ok := s.ownerOfReferent(r.ID)
			if !ok {
				return 0, 0, "", fmt.Errorf("%w: %d", core.ErrNoSuchReferent, r.ID)
			}
			committed = append(committed, owned{r.ID, k})
			mark(k)
			continue
		}
		mark(s.router.ShardOfReferent(r))
	}
	if home == -1 {
		if ts := b.TermRefs(); len(ts) > 0 {
			// Term-only annotations have no spatial affinity; every shard
			// holds every ontology, so the hash only spreads load.
			homeKey = ts[0].Ontology
			home = s.router.ShardOfKey(homeKey)
		} else {
			home = 0 // empty; Commit rejects with ErrEmptyAnnotation
		}
		span = 1
	}
	// Committed referents must live on the home shard: its core is what
	// validates and links them at commit, and it cannot see a referent
	// held elsewhere. Refuse up front with the owner named, rather than
	// letting the home shard answer "no such referent" for one that
	// exists.
	for _, c := range committed {
		if c.shard != home {
			return 0, 0, "", fmt.Errorf("%w: referent %d is homed on shard %d, annotation on shard %d", ErrCrossShardReferent, c.id, c.shard, home)
		}
	}
	return home, span, homeKey, nil
}

// ownerOfReferent finds the shard holding a committed referent.
func (s *Store) ownerOfReferent(id uint64) (int, bool) {
	for k := 0; k < s.NumShards(); k++ {
		if _, err := s.shardCore(k).View().Referent(id); err == nil {
			return k, true
		}
	}
	return 0, false
}

// ownerOfAnnotation finds the shard holding a committed annotation.
func (s *Store) ownerOfAnnotation(id uint64) (int, bool) {
	for k := 0; k < s.NumShards(); k++ {
		if _, err := s.shardCore(k).View().Annotation(id); err == nil {
			return k, true
		}
	}
	return 0, false
}

// DeleteAnnotation routes the deletion to the annotation's owner shard.
func (s *Store) DeleteAnnotation(id uint64) error {
	k, ok := s.ownerOfAnnotation(id)
	if !ok {
		return fmt.Errorf("%w: %d", core.ErrNoSuchAnnotation, id)
	}
	return s.mutate(k, "", func(m mutator) error { return m.DeleteAnnotation(id) })
}

// Mark constructors. Marks are read-only (registered at commit); each is
// resolved against the view of the shard that owns the underlying
// object, found by routing key where the key is part of the call and by
// probing otherwise.

// MarkDomainInterval marks an interval in a coordinate domain.
func (s *Store) MarkDomainInterval(domain string, iv interval.Interval) (*core.Referent, error) {
	return s.shardCore(s.router.ShardOfKey(domain)).MarkDomainInterval(domain, iv)
}

// MarkSequenceInterval marks an interval of a registered sequence.
func (s *Store) MarkSequenceInterval(seqID string, local interval.Interval) (*core.Referent, error) {
	for k := 0; k < s.NumShards(); k++ {
		v := s.shardCore(k).View()
		if _, _, err := v.Sequence(seqID); err == nil {
			return v.MarkSequenceInterval(seqID, local)
		}
	}
	return nil, fmt.Errorf("%w: sequence %s", core.ErrNoSuchObject, seqID)
}

// MarkImageRegion marks a rectangle in image-local coordinates.
func (s *Store) MarkImageRegion(imageID string, local rtree.Rect) (*core.Referent, error) {
	for k := 0; k < s.NumShards(); k++ {
		v := s.shardCore(k).View()
		if _, err := v.Image(imageID); err == nil {
			return v.MarkImageRegion(imageID, local)
		}
	}
	return nil, fmt.Errorf("%w: image %s", core.ErrNoSuchObject, imageID)
}

// MarkClade marks a clade of a registered tree.
func (s *Store) MarkClade(treeID string, leaves ...string) (*core.Referent, error) {
	return s.shardCore(s.router.ShardOfKey(treeID)).MarkClade(treeID, leaves...)
}

// MarkSubgraph marks an induced subgraph of an interaction graph.
func (s *Store) MarkSubgraph(graphID string, molecules ...string) (*core.Referent, error) {
	return s.shardCore(s.router.ShardOfKey(graphID)).MarkSubgraph(graphID, molecules...)
}

// MarkAlignmentBlock marks a block of a registered alignment.
func (s *Store) MarkAlignmentBlock(alnID string, rows []string, cols interval.Interval) (*core.Referent, error) {
	return s.shardCore(s.router.ShardOfKey(alnID)).MarkAlignmentBlock(alnID, rows, cols)
}

// MarkRecords marks a set of rows of a user record table.
func (s *Store) MarkRecords(table string, keys ...relstore.Value) (*core.Referent, error) {
	return s.shardCore(s.router.ShardOfKey(table)).MarkRecords(table, keys...)
}

// MarkObject marks a whole registered data object.
func (s *Store) MarkObject(typ core.ObjectType, objectID string) (*core.Referent, error) {
	var firstErr error
	for k := 0; k < s.NumShards(); k++ {
		r, err := s.shardCore(k).View().MarkObject(typ, objectID)
		if err == nil {
			return r, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// Sync flushes every shard's WAL (durable only).
func (s *Store) Sync() error {
	if s.durs == nil {
		return nil
	}
	for k, d := range s.durs {
		if err := d.Sync(); err != nil {
			return tag(k, err)
		}
	}
	return nil
}

// Close closes every shard; the first error is reported, but all shards
// are closed regardless.
func (s *Store) Close() error {
	if s.durs == nil {
		return nil
	}
	var firstErr error
	for k, d := range s.durs {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = tag(k, err)
		}
	}
	return firstErr
}
