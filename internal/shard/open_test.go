package shard_test

// Directory-layout safety: shard.Open may only lay a sharded store over
// a directory with no prior store state. A legacy unsharded durable
// directory and a sharded directory whose SHARDS.json was lost must
// both refuse — silently initialising would serve an empty store while
// the existing WAL/snapshot (or shard-<k>/) data sits ignored, forking
// the directory.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/shard"
)

func TestOpenRefusesUnshardedDirectory(t *testing.T) {
	dir := t.TempDir()
	d, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2} {
		if _, err := shard.Open(dir, n, durable.Options{}); err == nil {
			t.Fatalf("n=%d: sharded Open initialised over an unsharded durable directory", n)
		}
	}
	// The refused directory is untouched: still no SHARDS.json, and the
	// unsharded store still opens.
	if _, err := os.Stat(filepath.Join(dir, "SHARDS.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("refused Open left a SHARDS.json behind (stat err %v)", err)
	}
	d, err = durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("unsharded reopen after refused sharded Open: %v", err)
	}
	d.Close()
}

func TestOpenRefusesOrphanShardDirs(t *testing.T) {
	dir := t.TempDir()
	s, err := shard.Open(dir, 2, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost the manifest.
	if err := os.Remove(filepath.Join(dir, "SHARDS.json")); err != nil {
		t.Fatal(err)
	}
	// n=0 must not re-pin the count to 1 (hiding shard-1's data), and no
	// count may re-initialise over the orphaned shard directories.
	for _, n := range []int{0, 1, 2} {
		if _, err := shard.Open(dir, n, durable.Options{}); err == nil {
			t.Fatalf("n=%d: Open re-initialised over shard-* dirs with no manifest", n)
		}
	}
}

// TestCommitRefusesCrossShardCommittedReferent: reusing a committed
// referent homed on a different shard than the annotation's home shard
// is refused up front with ErrCrossShardReferent naming the owner — not
// a confusing "no such referent" from a home shard that cannot see it.
// Reuse within the home shard keeps working.
func TestCommitRefusesCrossShardCommittedReferent(t *testing.T) {
	s := shard.New(2)
	router := core.Router{Shards: 2}
	domA, domB := "", ""
	for i := 0; domA == "" || domB == ""; i++ {
		d := fmt.Sprintf("dom-%d", i)
		switch router.ShardOfKey(d) {
		case 0:
			if domA == "" {
				domA = d
			}
		default:
			if domB == "" {
				domB = d
			}
		}
	}
	for i, dom := range []string{domA, domB} {
		sq, err := seq.New(fmt.Sprintf("seq-%d", i), seq.DNA, strings.Repeat("ACGT", 64))
		if err != nil {
			t.Fatal(err)
		}
		sq.Domain = dom
		if err := s.RegisterSequence(sq); err != nil {
			t.Fatal(err)
		}
	}

	ra, err := s.MarkDomainInterval(domA, interval.Interval{Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	annA, err := s.Commit(s.NewAnnotation().Creator("tester").Date("2026-08-08").Body("on shard 0").Refer(ra))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := s.Referent(annA.ReferentIDs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Same-shard reuse of the committed referent works.
	rb, err := s.MarkDomainInterval(domA, interval.Interval{Lo: 5, Hi: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(s.NewAnnotation().Creator("tester").Date("2026-08-08").Body("shares on shard 0").Refer(rb).Refer(shared)); err != nil {
		t.Fatalf("same-shard committed-referent reuse: %v", err)
	}

	// Cross-shard reuse is refused with the dedicated error.
	rc, err := s.MarkDomainInterval(domB, interval.Interval{Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Commit(s.NewAnnotation().Creator("tester").Date("2026-08-08").Body("homes on shard 1").Refer(rc).Refer(shared))
	if !errors.Is(err, shard.ErrCrossShardReferent) {
		t.Fatalf("cross-shard committed-referent commit: err = %v, want ErrCrossShardReferent", err)
	}
	if errors.Is(err, core.ErrNoSuchReferent) {
		t.Fatalf("cross-shard refusal still reads as no-such-referent: %v", err)
	}
}
