package relstore

import (
	"fmt"
	"sync"

	"graphitti/internal/btree"
)

// IndexKind discriminates secondary index types.
type IndexKind uint8

// Index kinds.
const (
	// HashIndex supports equality lookups.
	HashIndex IndexKind = iota
	// OrderedIndex supports equality and range lookups.
	OrderedIndex
)

func (k IndexKind) String() string {
	if k == HashIndex {
		return "hash"
	}
	return "ordered"
}

// Table is a single relation with a primary key and optional secondary
// indexes. All methods are safe for concurrent use.
type Table struct {
	schema *Schema

	mu      sync.RWMutex
	rows    map[string]Row // primary key hash -> row
	hashIdx map[string]*hashIndex
	ordIdx  map[string]*orderedIndex
}

type hashIndex struct {
	col     int
	buckets map[string][]string // value hash -> primary key hashes
}

type ordKey struct {
	val Value
	pk  string
}

type orderedIndex struct {
	col  int
	tree *btree.Tree[ordKey, struct{}]
}

func newOrderedIndex(col int) *orderedIndex {
	cmp := func(a, b ordKey) int {
		// NULLs sort first so bounded range walks can skip them cheaply.
		switch {
		case a.val.IsNull() && !b.val.IsNull():
			return -1
		case !a.val.IsNull() && b.val.IsNull():
			return 1
		}
		if c, ok := a.val.Compare(b.val); ok && c != 0 {
			return c
		}
		// Equal or incomparable values order by primary key for stability.
		switch {
		case a.pk < b.pk:
			return -1
		case a.pk > b.pk:
			return 1
		}
		return 0
	}
	return &orderedIndex{col: col, tree: btree.New[ordKey, struct{}](cmp)}
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		schema:  schema,
		rows:    make(map[string]Row),
		hashIdx: make(map[string]*hashIndex),
		ordIdx:  make(map[string]*orderedIndex),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len reports the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// CreateIndex adds a secondary index on the named column. Existing rows are
// indexed immediately. Creating an index that already exists on the column
// with the same kind is a no-op.
func (t *Table) CreateIndex(column string, kind IndexKind) error {
	ci, err := t.schema.ColumnIndex(column)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch kind {
	case HashIndex:
		if _, ok := t.hashIdx[column]; ok {
			return nil
		}
		idx := &hashIndex{col: ci, buckets: make(map[string][]string)}
		for pk, row := range t.rows {
			k := row[ci].hashKey()
			idx.buckets[k] = append(idx.buckets[k], pk)
		}
		t.hashIdx[column] = idx
	case OrderedIndex:
		if _, ok := t.ordIdx[column]; ok {
			return nil
		}
		idx := newOrderedIndex(ci)
		for pk, row := range t.rows {
			idx.tree.Set(ordKey{row[ci], pk}, struct{}{})
		}
		t.ordIdx[column] = idx
	default:
		return fmt.Errorf("relstore: unknown index kind %d", kind)
	}
	return nil
}

// Indexes reports the indexed columns per kind (for planning diagnostics).
func (t *Table) Indexes() map[string]IndexKind {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]IndexKind)
	for col := range t.hashIdx {
		out[col] = HashIndex
	}
	for col := range t.ordIdx {
		out[col] = OrderedIndex // ordered shadows hash in reporting
	}
	return out
}

// Insert adds a row. The primary key value must be unique.
func (t *Table) Insert(row Row) error {
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := row[t.schema.keyIndex()].hashKey()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.rows[pk]; dup {
		return fmt.Errorf("%w: %s in %s", ErrDuplicateKey,
			row[t.schema.keyIndex()], t.schema.Name)
	}
	stored := row.Clone()
	t.rows[pk] = stored
	t.indexRowLocked(pk, stored)
	return nil
}

func (t *Table) indexRowLocked(pk string, row Row) {
	for _, idx := range t.hashIdx {
		k := row[idx.col].hashKey()
		idx.buckets[k] = append(idx.buckets[k], pk)
	}
	for _, idx := range t.ordIdx {
		idx.tree.Set(ordKey{row[idx.col], pk}, struct{}{})
	}
}

func (t *Table) unindexRowLocked(pk string, row Row) {
	for _, idx := range t.hashIdx {
		k := row[idx.col].hashKey()
		bucket := idx.buckets[k]
		for i, p := range bucket {
			if p == pk {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(idx.buckets, k)
		} else {
			idx.buckets[k] = bucket
		}
	}
	for _, idx := range t.ordIdx {
		idx.tree.Delete(ordKey{row[idx.col], pk})
	}
}

// Get returns the row with the given primary key value.
func (t *Table) Get(key Value) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[key.hashKey()]
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNoSuchRow, key, t.schema.Name)
	}
	return row.Clone(), nil
}

// Update replaces the row whose primary key matches row's key column.
func (t *Table) Update(row Row) error {
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := row[t.schema.keyIndex()].hashKey()
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("%w: %s in %s", ErrNoSuchRow,
			row[t.schema.keyIndex()], t.schema.Name)
	}
	t.unindexRowLocked(pk, old)
	stored := row.Clone()
	t.rows[pk] = stored
	t.indexRowLocked(pk, stored)
	return nil
}

// Delete removes the row with the given primary key value, reporting
// whether it existed.
func (t *Table) Delete(key Value) bool {
	pk := key.hashKey()
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[pk]
	if !ok {
		return false
	}
	t.unindexRowLocked(pk, row)
	delete(t.rows, pk)
	return true
}

// Scan visits every row until fn returns false. Rows passed to fn must not
// be mutated. Iteration order is unspecified.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, row := range t.rows {
		if !fn(row) {
			return
		}
	}
}

// Store is a collection of named tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// CreateTable adds a table with the given schema.
func (s *Store) CreateTable(schema *Schema) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[schema.Name]; dup {
		return nil, fmt.Errorf("%w: table %s", ErrDuplicateName, schema.Name)
	}
	t := NewTable(schema)
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// TableNames returns the names of all tables.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	return out
}
