package relstore

import (
	"strings"
	"testing"
)

func TestPredicateStrings(t *testing.T) {
	p := AndOf(
		Eq1("a", I(1)),
		OrOf(
			&Cmp{Column: "b", Op: Lt, Val: F(2.5)},
			&Not{P: &Cmp{Column: "c", Op: IsNullOp}},
		),
		TruePred{},
	)
	got := p.String()
	for _, want := range []string{"a = 1", "b < 2.5", "not (c is null)", "true"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
	// Operator strings.
	ops := map[CmpOp]string{
		Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
		ContainsOp: "contains", IsNullOp: "is null",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	// Single-element OrOf/AndOf collapse.
	single := Eq1("a", I(1))
	if OrOf(single) != single || AndOf(single) != single {
		t.Error("single-element combinators should collapse")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"NULL":           Null,
		"42":             I(42),
		"2.5":            F(2.5),
		`"x"`:            S("x"),
		"true":           B(true),
		"blob (3 bytes)": Blob([]byte("abc")),
	}
	for want, v := range cases {
		got := v.String()
		if want == "blob (3 bytes)" {
			if !strings.Contains(got, "3 bytes") {
				t.Errorf("Blob String = %q", got)
			}
			continue
		}
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if BytesVal := Blob([]byte("xy")).BytesVal(); string(BytesVal) != "xy" {
		t.Error("BytesVal wrong")
	}
	// hashKey covers every type and distinguishes NULL.
	keys := map[string]bool{}
	for _, v := range []Value{Null, I(1), F(1.5), S("s"), B(true), B(false), Blob([]byte("b"))} {
		k := v.hashKey()
		if keys[k] {
			t.Errorf("hash collision for %v", v)
		}
		keys[k] = true
	}
	// Bool and bytes compare.
	if c, ok := B(false).Compare(B(true)); !ok || c >= 0 {
		t.Error("bool compare wrong")
	}
	if c, ok := Blob([]byte("a")).Compare(Blob([]byte("b"))); !ok || c >= 0 {
		t.Error("bytes compare wrong")
	}
	if _, ok := Null.Compare(I(1)); ok {
		t.Error("NULL must be incomparable")
	}
}

func TestSchemaHasColumnAndAccessors(t *testing.T) {
	s := seqSchema(t)
	if !s.HasColumn("organism") || s.HasColumn("ghost") {
		t.Error("HasColumn wrong")
	}
	tbl := NewTable(s)
	if tbl.Schema() != s {
		t.Error("Schema accessor wrong")
	}
	if IndexKind(HashIndex).String() != "hash" || IndexKind(OrderedIndex).String() != "ordered" {
		t.Error("IndexKind strings wrong")
	}
}

func TestScanEarlyStopAndCount(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 30)
	seen := 0
	tbl.Scan(func(Row) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("Scan visited %d", seen)
	}
	// 30 rows cycling 4 organisms: indices 1,5,…,29 are mouse -> 8 rows.
	n, err := tbl.Count(Eq1("organism", S("mouse")))
	if err != nil || n != 8 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	if _, err := tbl.Count(Eq1("ghost", S("x"))); err == nil {
		t.Fatal("Count on ghost column should fail")
	}
}

func TestPlanString(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 10)
	_, plan, err := tbl.SelectPlan(Eq1("id", S("NC_0001")))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "primary-key") {
		t.Fatalf("plan string = %q", plan.String())
	}
	_, plan, _ = tbl.SelectPlan(nil)
	if !strings.Contains(plan.String(), "full-scan") {
		t.Fatalf("plan string = %q", plan.String())
	}
	for _, a := range []Access{AccessPrimaryKey, AccessHashIndex, AccessOrderedIndex, AccessScan} {
		if a.String() == "" {
			t.Error("missing Access name")
		}
	}
}

func TestOrderedRangeBoundsCombine(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	_ = tbl.CreateIndex("length", OrderedIndex)
	fillOrganisms(t, tbl, 200)
	// Two lower bounds: the tighter one must win; same for upper bounds.
	p := AndOf(
		&Cmp{Column: "length", Op: Ge, Val: I(120)},
		&Cmp{Column: "length", Op: Gt, Val: I(149)},
		&Cmp{Column: "length", Op: Le, Val: I(180)},
		&Cmp{Column: "length", Op: Lt, Val: I(175)},
	)
	rows, plan, err := tbl.SelectPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessOrderedIndex {
		t.Fatalf("plan = %v", plan)
	}
	// lengths 150..174 inclusive => 25 rows.
	if len(rows) != 25 {
		t.Fatalf("rows = %d, want 25", len(rows))
	}
	if plan.Examined > 30 {
		t.Fatalf("examined %d; bounds not combined", plan.Examined)
	}
}

func TestValidateNestedPredicates(t *testing.T) {
	s := seqSchema(t)
	ok := AndOf(OrOf(Eq1("id", S("x")), &Not{P: Eq1("organism", S("y"))}), TruePred{})
	if err := Validate(ok, s); err != nil {
		t.Fatal(err)
	}
	bad := OrOf(Eq1("id", S("x")), &Not{P: Eq1("ghost", S("y"))})
	if err := Validate(bad, s); err == nil {
		t.Fatal("nested ghost column accepted")
	}
}
