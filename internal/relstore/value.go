// Package relstore is Graphitti's embedded relational storage engine.
//
// The paper models "data objects and their metadata … as type-specific
// relations stored in a relational database — thus DNA sequences, protein
// sequences, images etc. all have their metadata stored in separate
// tables. The raw actual data is also stored in the same tables in their
// native formats." This package provides those tables: typed schemas,
// primary keys, hash and ordered secondary indexes, predicate evaluation
// with index-aware planning, and blob columns for the native-format data.
package relstore

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates column types.
type Type uint8

// Supported column types.
const (
	Int64 Type = iota
	Float64
	String
	Bool
	Bytes
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	case Bytes:
		return "bytes"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a typed cell value. The zero Value is NULL.
type Value struct {
	typ   Type
	null  bool
	i     int64
	f     float64
	s     string
	b     []byte
	truth bool
}

// Null is the NULL value.
var Null = Value{null: true}

// I returns an Int64 value.
func I(v int64) Value { return Value{typ: Int64, i: v} }

// F returns a Float64 value.
func F(v float64) Value { return Value{typ: Float64, f: v} }

// S returns a String value.
func S(v string) Value { return Value{typ: String, s: v} }

// B returns a Bool value.
func B(v bool) Value { return Value{typ: Bool, truth: v} }

// Blob returns a Bytes value holding v (not copied).
func Blob(v []byte) Value { return Value{typ: Bytes, b: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// Type returns the value's type; meaningless for NULL.
func (v Value) Type() Type { return v.typ }

// Int returns the int64 payload (0 unless the value is an Int64).
func (v Value) Int() int64 { return v.i }

// Float returns the numeric payload as float64 for Int64/Float64 values.
func (v Value) Float() float64 {
	if v.typ == Int64 {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload ("" unless the value is a String).
func (v Value) Str() string { return v.s }

// BoolVal returns the boolean payload.
func (v Value) BoolVal() bool { return v.truth }

// BytesVal returns the bytes payload.
func (v Value) BytesVal() []byte { return v.b }

// numeric reports whether the value is Int64 or Float64.
func (v Value) numeric() bool { return v.typ == Int64 || v.typ == Float64 }

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL (SQL semantics); use IsNull to test for NULL explicitly.
func (v Value) Equal(o Value) bool {
	if v.null || o.null {
		return false
	}
	if v.numeric() && o.numeric() {
		if v.typ == Int64 && o.typ == Int64 {
			return v.i == o.i
		}
		return v.Float() == o.Float()
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case String:
		return v.s == o.s
	case Bool:
		return v.truth == o.truth
	case Bytes:
		return bytes.Equal(v.b, o.b)
	default:
		return false
	}
}

// Compare orders two non-NULL values of comparable types. It returns
// (-1, 0, +1) and ok=false when the values are not comparable (NULL or
// mismatched non-numeric types).
func (v Value) Compare(o Value) (int, bool) {
	if v.null || o.null {
		return 0, false
	}
	if v.numeric() && o.numeric() {
		if v.typ == Int64 && o.typ == Int64 {
			switch {
			case v.i < o.i:
				return -1, true
			case v.i > o.i:
				return 1, true
			}
			return 0, true
		}
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.typ != o.typ {
		return 0, false
	}
	switch v.typ {
	case String:
		return strings.Compare(v.s, o.s), true
	case Bool:
		a, b := 0, 0
		if v.truth {
			a = 1
		}
		if o.truth {
			b = 1
		}
		return a - b, true
	case Bytes:
		return bytes.Compare(v.b, o.b), true
	default:
		return 0, false
	}
}

// hashKey returns a string key usable in hash indexes; it is injective per
// type and consistent with Equal for same-typed values.
func (v Value) hashKey() string {
	if v.null {
		return "\x00N"
	}
	switch v.typ {
	case Int64:
		return "\x01" + strconv.FormatInt(v.i, 10)
	case Float64:
		// Integral floats hash like ints so Int64/Float64 equality holds.
		if v.f == float64(int64(v.f)) {
			return "\x01" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x02" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case String:
		return "\x03" + v.s
	case Bool:
		if v.truth {
			return "\x04t"
		}
		return "\x04f"
	case Bytes:
		return "\x05" + string(v.b)
	default:
		return "\x06"
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.typ {
	case Int64:
		return strconv.FormatInt(v.i, 10)
	case Float64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return strconv.Quote(v.s)
	case Bool:
		return strconv.FormatBool(v.truth)
	case Bytes:
		return fmt.Sprintf("blob(%d bytes)", len(v.b))
	default:
		return "?"
	}
}
