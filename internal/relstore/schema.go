package relstore

import (
	"errors"
	"fmt"
)

// Errors reported by schema and table operations.
var (
	ErrNoSuchColumn  = errors.New("relstore: no such column")
	ErrNoSuchTable   = errors.New("relstore: no such table")
	ErrDuplicateKey  = errors.New("relstore: duplicate primary key")
	ErrTypeMismatch  = errors.New("relstore: value type does not match column type")
	ErrNotNull       = errors.New("relstore: NULL in NOT NULL column")
	ErrBadSchema     = errors.New("relstore: invalid schema")
	ErrNoSuchRow     = errors.New("relstore: no such row")
	ErrDuplicateName = errors.New("relstore: duplicate name")
)

// Column describes one attribute of a relation.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// Schema describes a relation: its name, columns, and primary key column.
type Schema struct {
	Name    string
	Columns []Column
	// Key names the primary key column. It must exist, be NOT NULL
	// implicitly, and hold unique values.
	Key string

	byName map[string]int
}

// NewSchema builds and validates a schema.
func NewSchema(name string, key string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty table name", ErrBadSchema)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: table %s has no columns", ErrBadSchema, name)
	}
	s := &Schema{Name: name, Columns: cols, Key: key, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("%w: column %d of %s unnamed", ErrBadSchema, i, name)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("%w: column %s in %s", ErrDuplicateName, c.Name, name)
		}
		s.byName[c.Name] = i
	}
	if _, ok := s.byName[key]; !ok {
		return nil, fmt.Errorf("%w: key column %q not in table %s", ErrBadSchema, key, name)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static schemas.
func MustSchema(name string, key string, cols ...Column) *Schema {
	s, err := NewSchema(name, key, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column.
func (s *Schema) ColumnIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Name, name)
	}
	return i, nil
}

// HasColumn reports whether the named column exists.
func (s *Schema) HasColumn(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// keyIndex returns the position of the primary key column.
func (s *Schema) keyIndex() int { return s.byName[s.Key] }

// CheckRow validates a row against the schema.
func (s *Schema) CheckRow(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("%w: row has %d values, table %s has %d columns",
			ErrBadSchema, len(row), s.Name, len(s.Columns))
	}
	for i, c := range s.Columns {
		v := row[i]
		if v.IsNull() {
			if c.NotNull || c.Name == s.Key {
				return fmt.Errorf("%w: %s.%s", ErrNotNull, s.Name, c.Name)
			}
			continue
		}
		if v.Type() != c.Type {
			// Int64 values are acceptable in Float64 columns.
			if c.Type == Float64 && v.Type() == Int64 {
				continue
			}
			return fmt.Errorf("%w: %s.%s is %s, value is %s",
				ErrTypeMismatch, s.Name, c.Name, c.Type, v.Type())
		}
	}
	return nil
}

// Row is a tuple of values, positionally aligned with the schema's columns.
type Row []Value

// Clone returns a copy of the row (values are immutable; the slice is
// copied so callers can retain results safely).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
