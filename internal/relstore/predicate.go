package relstore

import (
	"fmt"
	"strings"
)

// CmpOp enumerates comparison operators in predicates.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	// ContainsOp matches string columns containing the operand substring.
	ContainsOp
	// IsNullOp matches NULL cells; the operand value is ignored.
	IsNullOp
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case ContainsOp:
		return "contains"
	case IsNullOp:
		return "is null"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Pred is a boolean predicate over a row.
type Pred interface {
	predNode()
	String() string
}

// Cmp compares a column against a literal value.
type Cmp struct {
	Column string
	Op     CmpOp
	Val    Value
}

// And is the conjunction of its sub-predicates (true when empty).
type And struct{ Preds []Pred }

// Or is the disjunction of its sub-predicates (false when empty).
type Or struct{ Preds []Pred }

// Not negates a sub-predicate.
type Not struct{ P Pred }

// TruePred matches every row.
type TruePred struct{}

func (*Cmp) predNode()     {}
func (*And) predNode()     {}
func (*Or) predNode()      {}
func (*Not) predNode()     {}
func (TruePred) predNode() {}

func (c *Cmp) String() string {
	if c.Op == IsNullOp {
		return c.Column + " is null"
	}
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Val)
}

func (a *And) String() string { return joinPreds(a.Preds, " and ") }
func (o *Or) String() string  { return joinPreds(o.Preds, " or ") }
func (n *Not) String() string { return "not (" + n.P.String() + ")" }

// String implements Pred.
func (TruePred) String() string { return "true" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Eq1 is shorthand for a single-column equality predicate.
func Eq1(column string, v Value) Pred { return &Cmp{Column: column, Op: Eq, Val: v} }

// AndOf builds a conjunction.
func AndOf(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return &And{Preds: ps}
}

// OrOf builds a disjunction.
func OrOf(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return &Or{Preds: ps}
}

// Eval evaluates the predicate against a row of the given schema.
func Eval(p Pred, schema *Schema, row Row) (bool, error) {
	switch v := p.(type) {
	case TruePred:
		return true, nil
	case *Cmp:
		ci, err := schema.ColumnIndex(v.Column)
		if err != nil {
			return false, err
		}
		cell := row[ci]
		switch v.Op {
		case IsNullOp:
			return cell.IsNull(), nil
		case Eq:
			return cell.Equal(v.Val), nil
		case Ne:
			if cell.IsNull() || v.Val.IsNull() {
				return false, nil
			}
			return !cell.Equal(v.Val), nil
		case ContainsOp:
			if cell.IsNull() || cell.Type() != String || v.Val.Type() != String {
				return false, nil
			}
			return strings.Contains(cell.Str(), v.Val.Str()), nil
		default:
			c, ok := cell.Compare(v.Val)
			if !ok {
				return false, nil
			}
			switch v.Op {
			case Lt:
				return c < 0, nil
			case Le:
				return c <= 0, nil
			case Gt:
				return c > 0, nil
			case Ge:
				return c >= 0, nil
			}
			return false, fmt.Errorf("relstore: unknown operator %v", v.Op)
		}
	case *And:
		for _, sub := range v.Preds {
			ok, err := Eval(sub, schema, row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case *Or:
		for _, sub := range v.Preds {
			ok, err := Eval(sub, schema, row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *Not:
		ok, err := Eval(v.P, schema, row)
		if err != nil {
			return false, err
		}
		return !ok, nil
	default:
		return false, fmt.Errorf("relstore: unknown predicate %T", p)
	}
}

// Validate checks that every column referenced by the predicate exists.
func Validate(p Pred, schema *Schema) error {
	switch v := p.(type) {
	case TruePred:
		return nil
	case *Cmp:
		_, err := schema.ColumnIndex(v.Column)
		return err
	case *And:
		for _, sub := range v.Preds {
			if err := Validate(sub, schema); err != nil {
				return err
			}
		}
		return nil
	case *Or:
		for _, sub := range v.Preds {
			if err := Validate(sub, schema); err != nil {
				return err
			}
		}
		return nil
	case *Not:
		return Validate(v.P, schema)
	default:
		return fmt.Errorf("relstore: unknown predicate %T", p)
	}
}
