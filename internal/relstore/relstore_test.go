package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func seqSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("sequences", "id",
		Column{Name: "id", Type: String},
		Column{Name: "organism", Type: String, NotNull: true},
		Column{Name: "length", Type: Int64},
		Column{Name: "gc", Type: Float64},
		Column{Name: "circular", Type: Bool},
		Column{Name: "data", Type: Bytes},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seqRow(id, org string, length int64, gc float64) Row {
	return Row{S(id), S(org), I(length), F(gc), B(false), Blob([]byte("ACGT"))}
}

func TestValueBasics(t *testing.T) {
	if !I(3).Equal(I(3)) || I(3).Equal(I(4)) {
		t.Fatal("int equality wrong")
	}
	if !I(3).Equal(F(3.0)) {
		t.Fatal("cross numeric equality should hold")
	}
	if Null.Equal(Null) {
		t.Fatal("NULL must not equal NULL")
	}
	if S("a").Equal(I(1)) {
		t.Fatal("cross-type equality should fail")
	}
	if c, ok := S("a").Compare(S("b")); !ok || c >= 0 {
		t.Fatal("string compare wrong")
	}
	if _, ok := S("a").Compare(I(1)); ok {
		t.Fatal("string/int must be incomparable")
	}
	if c, ok := I(2).Compare(F(2.5)); !ok || c >= 0 {
		t.Fatal("numeric cross compare wrong")
	}
	if !B(true).BoolVal() {
		t.Fatal("bool payload wrong")
	}
	if I(3).hashKey() != F(3.0).hashKey() {
		t.Fatal("hash keys of equal numerics must agree")
	}
	if S("3").hashKey() == I(3).hashKey() {
		t.Fatal("hash keys must be type-tagged")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", "id", Column{Name: "id", Type: Int64}); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := NewSchema("t", "id"); err == nil {
		t.Fatal("no columns accepted")
	}
	if _, err := NewSchema("t", "missing", Column{Name: "id", Type: Int64}); err == nil {
		t.Fatal("missing key column accepted")
	}
	if _, err := NewSchema("t", "id",
		Column{Name: "id", Type: Int64}, Column{Name: "id", Type: String}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	if err := tbl.Insert(seqRow("NC_1", "influenza", 2341, 0.41)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(seqRow("NC_1", "x", 1, 0)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate key: err = %v", err)
	}
	row, err := tbl.Get(S("NC_1"))
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Str() != "influenza" || row[2].Int() != 2341 {
		t.Fatalf("Get returned %v", row)
	}
	// Update
	row[2] = I(9999)
	if err := tbl.Update(row); err != nil {
		t.Fatal(err)
	}
	row2, _ := tbl.Get(S("NC_1"))
	if row2[2].Int() != 9999 {
		t.Fatalf("update not applied: %v", row2)
	}
	if err := tbl.Update(seqRow("ghost", "x", 1, 0)); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("update missing: err = %v", err)
	}
	if !tbl.Delete(S("NC_1")) {
		t.Fatal("delete missed")
	}
	if tbl.Delete(S("NC_1")) {
		t.Fatal("double delete hit")
	}
	if _, err := tbl.Get(S("NC_1")); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("get after delete: err = %v", err)
	}
}

func TestRowValidation(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	// Wrong arity.
	if err := tbl.Insert(Row{S("x")}); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("arity: err = %v", err)
	}
	// Type mismatch.
	bad := seqRow("a", "org", 1, 0)
	bad[2] = S("not-an-int")
	if err := tbl.Insert(bad); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("type mismatch: err = %v", err)
	}
	// NULL in NOT NULL column.
	bad2 := seqRow("b", "org", 1, 0)
	bad2[1] = Null
	if err := tbl.Insert(bad2); !errors.Is(err, ErrNotNull) {
		t.Fatalf("not null: err = %v", err)
	}
	// NULL primary key.
	bad3 := seqRow("c", "org", 1, 0)
	bad3[0] = Null
	if err := tbl.Insert(bad3); !errors.Is(err, ErrNotNull) {
		t.Fatalf("null pk: err = %v", err)
	}
	// Int into float column is fine.
	ok := seqRow("d", "org", 1, 0)
	ok[3] = I(1)
	if err := tbl.Insert(ok); err != nil {
		t.Fatalf("int into float rejected: %v", err)
	}
	// NULL in nullable column is fine.
	ok2 := seqRow("e", "org", 1, 0)
	ok2[5] = Null
	if err := tbl.Insert(ok2); err != nil {
		t.Fatalf("null in nullable rejected: %v", err)
	}
}

func fillOrganisms(t *testing.T, tbl *Table, n int) {
	t.Helper()
	orgs := []string{"influenza", "mouse", "human", "yeast"}
	for i := 0; i < n; i++ {
		r := seqRow(fmt.Sprintf("NC_%04d", i), orgs[i%len(orgs)], int64(100+i), float64(i%50)/100)
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelectScanAndResidual(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 100)
	rows, plan, err := tbl.SelectPlan(Eq1("organism", S("mouse")))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessScan {
		t.Fatalf("expected full scan, got %v", plan)
	}
	if len(rows) != 25 {
		t.Fatalf("returned %d rows, want 25", len(rows))
	}
	for _, r := range rows {
		if r[1].Str() != "mouse" {
			t.Fatalf("wrong row %v", r)
		}
	}
	// Results ordered by primary key.
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Str() >= rows[i][0].Str() {
			t.Fatal("results not ordered by key")
		}
	}
}

func TestSelectPrimaryKey(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 100)
	rows, plan, err := tbl.SelectPlan(Eq1("id", S("NC_0042")))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessPrimaryKey || plan.Examined != 1 || len(rows) != 1 {
		t.Fatalf("plan = %v, rows = %d", plan, len(rows))
	}
	// Missing key: no rows, still a point lookup.
	rows, plan, _ = tbl.SelectPlan(Eq1("id", S("nope")))
	if plan.Access != AccessPrimaryKey || len(rows) != 0 {
		t.Fatalf("plan = %v, rows = %d", plan, len(rows))
	}
}

func TestSelectHashIndex(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 200)
	if err := tbl.CreateIndex("organism", HashIndex); err != nil {
		t.Fatal(err)
	}
	rows, plan, err := tbl.SelectPlan(Eq1("organism", S("yeast")))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessHashIndex || plan.Column != "organism" {
		t.Fatalf("plan = %v", plan)
	}
	if len(rows) != 50 || plan.Examined != 50 {
		t.Fatalf("rows = %d, examined = %d", len(rows), plan.Examined)
	}
	// Residual conjunct narrows further but the probe still drives access.
	rows, plan, err = tbl.SelectPlan(AndOf(
		Eq1("organism", S("yeast")),
		&Cmp{Column: "length", Op: Lt, Val: I(150)},
	))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessHashIndex || len(rows) >= 50 {
		t.Fatalf("plan = %v, rows = %d", plan, len(rows))
	}
}

func TestSelectOrderedIndex(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 500)
	if err := tbl.CreateIndex("length", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	p := AndOf(
		&Cmp{Column: "length", Op: Ge, Val: I(150)},
		&Cmp{Column: "length", Op: Lt, Val: I(160)},
	)
	rows, plan, err := tbl.SelectPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessOrderedIndex || plan.Column != "length" {
		t.Fatalf("plan = %v", plan)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if plan.Examined > 12 {
		t.Fatalf("range walk examined %d rows; bound not applied", plan.Examined)
	}
	// Equality via ordered index also works.
	rows, plan, err = tbl.SelectPlan(Eq1("length", I(123)))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessOrderedIndex || len(rows) != 1 {
		t.Fatalf("plan = %v, rows = %d", plan, len(rows))
	}
}

func TestIndexMaintenanceOnUpdateDelete(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	_ = tbl.CreateIndex("organism", HashIndex)
	_ = tbl.CreateIndex("length", OrderedIndex)
	fillOrganisms(t, tbl, 50)

	// Update moves a row between index buckets.
	row, _ := tbl.Get(S("NC_0001"))
	row[1] = S("zebrafish")
	row[2] = I(100000)
	if err := tbl.Update(row); err != nil {
		t.Fatal(err)
	}
	rows, _ := tbl.Select(Eq1("organism", S("zebrafish")))
	if len(rows) != 1 {
		t.Fatalf("zebrafish rows = %d", len(rows))
	}
	rows, _ = tbl.Select(Eq1("organism", S("mouse")))
	for _, r := range rows {
		if r[0].Str() == "NC_0001" {
			t.Fatal("stale hash index entry after update")
		}
	}
	rows, _ = tbl.Select(&Cmp{Column: "length", Op: Ge, Val: I(100000)})
	if len(rows) != 1 || rows[0][0].Str() != "NC_0001" {
		t.Fatalf("ordered index after update: %v", rows)
	}
	// Delete removes index entries.
	tbl.Delete(S("NC_0001"))
	rows, _ = tbl.Select(Eq1("organism", S("zebrafish")))
	if len(rows) != 0 {
		t.Fatal("stale index entry after delete")
	}
}

func TestCreateIndexOnExistingRows(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	fillOrganisms(t, tbl, 80)
	// Index created after rows exist must cover them.
	_ = tbl.CreateIndex("organism", HashIndex)
	rows, plan, _ := tbl.SelectPlan(Eq1("organism", S("human")))
	if plan.Access != AccessHashIndex || len(rows) != 20 {
		t.Fatalf("plan = %v, rows = %d", plan, len(rows))
	}
	if err := tbl.CreateIndex("nope", HashIndex); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("index on missing column: err = %v", err)
	}
	// Re-creating is a no-op.
	if err := tbl.CreateIndex("organism", HashIndex); err != nil {
		t.Fatal(err)
	}
	kinds := tbl.Indexes()
	if kinds["organism"] != HashIndex {
		t.Fatalf("Indexes() = %v", kinds)
	}
}

func TestPredicates(t *testing.T) {
	schema := seqSchema(t)
	row := seqRow("NC_1", "influenza", 2341, 0.41)
	rowNull := seqRow("NC_2", "mouse", 0, 0)
	rowNull[5] = Null

	tests := []struct {
		p    Pred
		row  Row
		want bool
	}{
		{Eq1("organism", S("influenza")), row, true},
		{Eq1("organism", S("mouse")), row, false},
		{&Cmp{Column: "length", Op: Gt, Val: I(1000)}, row, true},
		{&Cmp{Column: "length", Op: Le, Val: I(1000)}, row, false},
		{&Cmp{Column: "organism", Op: ContainsOp, Val: S("flu")}, row, true},
		{&Cmp{Column: "organism", Op: ContainsOp, Val: S("xyz")}, row, false},
		{&Cmp{Column: "data", Op: IsNullOp}, rowNull, true},
		{&Cmp{Column: "data", Op: IsNullOp}, row, false},
		{&Cmp{Column: "organism", Op: Ne, Val: S("mouse")}, row, true},
		{AndOf(Eq1("organism", S("influenza")), &Cmp{Column: "length", Op: Gt, Val: I(2000)}), row, true},
		{OrOf(Eq1("organism", S("mouse")), Eq1("organism", S("influenza"))), row, true},
		{&Not{P: Eq1("organism", S("influenza"))}, row, false},
		{TruePred{}, row, true},
		// Comparisons involving NULL are false.
		{&Cmp{Column: "data", Op: Eq, Val: Blob([]byte("x"))}, rowNull, false},
		{&Cmp{Column: "data", Op: Ne, Val: Blob([]byte("x"))}, rowNull, false},
	}
	for i, tc := range tests {
		got, err := Eval(tc.p, schema, tc.row)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.p, got, tc.want)
		}
	}
	if _, err := Eval(Eq1("ghost", S("x")), schema, row); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("ghost column: err = %v", err)
	}
	if err := Validate(AndOf(Eq1("ghost", S("x"))), schema); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("Validate ghost: err = %v", err)
	}
}

func TestSelectWithNullsInOrderedIndex(t *testing.T) {
	s, err := NewSchema("t", "id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	_ = tbl.CreateIndex("v", OrderedIndex)
	for i := 0; i < 20; i++ {
		v := I(int64(i))
		if i%3 == 0 {
			v = Null
		}
		if err := tbl.Insert(Row{I(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	rows, plan, err := tbl.SelectPlan(&Cmp{Column: "v", Op: Ge, Val: I(10)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != AccessOrderedIndex {
		t.Fatalf("plan = %v", plan)
	}
	want := 0
	for i := 10; i < 20; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	// NULLs must be reachable via IsNull (scan path).
	rows, _ = tbl.Select(&Cmp{Column: "v", Op: IsNullOp})
	if len(rows) != 7 {
		t.Fatalf("null rows = %d, want 7", len(rows))
	}
}

func TestStore(t *testing.T) {
	st := NewStore()
	s1 := seqSchema(t)
	if _, err := st.CreateTable(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateTable(s1); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate table: err = %v", err)
	}
	if _, err := st.Table("sequences"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Table("ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("ghost table: err = %v", err)
	}
	if names := st.TableNames(); len(names) != 1 || names[0] != "sequences" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestProject(t *testing.T) {
	schema := seqSchema(t)
	rows := []Row{seqRow("a", "x", 1, 0.5), seqRow("b", "y", 2, 0.6)}
	out, err := Project(schema, rows, "organism", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0].Str() != "x" || out[0][1].Str() != "a" {
		t.Fatalf("Project = %v", out)
	}
	if _, err := Project(schema, rows, "nope"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("Project ghost: err = %v", err)
	}
}

func TestHashJoin(t *testing.T) {
	seqs := seqSchema(t)
	ann, err := NewSchema("annotations", "aid",
		Column{Name: "aid", Type: Int64},
		Column{Name: "seq_id", Type: String},
		Column{Name: "note", Type: String},
	)
	if err != nil {
		t.Fatal(err)
	}
	seqRows := []Row{
		seqRow("NC_1", "influenza", 10, 0),
		seqRow("NC_2", "mouse", 20, 0),
		seqRow("NC_3", "human", 30, 0),
	}
	annRows := []Row{
		{I(1), S("NC_1"), S("protease site")},
		{I(2), S("NC_1"), S("cleavage")},
		{I(3), S("NC_3"), S("promoter")},
		{I(4), S("NC_9"), S("dangling")},
		{I(5), Null, S("orphan")},
	}
	joined, err := HashJoin(seqs, seqRows, "id", ann, annRows, "seq_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 3 {
		t.Fatalf("join produced %d rows, want 3", len(joined))
	}
	for _, jr := range joined {
		if jr.Left[0].Str() != jr.Right[1].Str() {
			t.Fatalf("join key mismatch: %v vs %v", jr.Left[0], jr.Right[1])
		}
	}
	if _, err := HashJoin(seqs, seqRows, "ghost", ann, annRows, "seq_id"); err == nil {
		t.Fatal("join on missing column should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tbl := NewTable(seqSchema(t))
	_ = tbl.CreateIndex("organism", HashIndex)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := tbl.Insert(seqRow(id, "influenza", int64(i), 0)); err != nil {
					errCh <- err
					return
				}
				if _, err := tbl.Get(S(id)); err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if _, err := tbl.Select(Eq1("organism", S("influenza"))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if tbl.Len() != 8*200 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

// TestQuickPlannerNeverChangesResults: for random predicates, the indexed
// and unindexed tables must return identical row sets.
func TestQuickPlannerNeverChangesResults(t *testing.T) {
	schema1 := MustSchema("a", "id",
		Column{Name: "id", Type: Int64},
		Column{Name: "grp", Type: String},
		Column{Name: "n", Type: Int64},
	)
	schema2 := MustSchema("b", "id",
		Column{Name: "id", Type: Int64},
		Column{Name: "grp", Type: String},
		Column{Name: "n", Type: Int64},
	)
	check := func(seed int64, eqGrp uint8, loRaw, hiRaw uint8, useLo, useHi bool) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewTable(schema1)
		plain := NewTable(schema2)
		_ = indexed.CreateIndex("grp", HashIndex)
		_ = indexed.CreateIndex("n", OrderedIndex)
		groups := []string{"g0", "g1", "g2"}
		for i := 0; i < 200; i++ {
			row := Row{I(int64(i)), S(groups[rng.Intn(3)]), I(int64(rng.Intn(100)))}
			if indexed.Insert(row) != nil || plain.Insert(row) != nil {
				return false
			}
		}
		var conj []Pred
		conj = append(conj, Eq1("grp", S(groups[int(eqGrp)%3])))
		if useLo {
			conj = append(conj, &Cmp{Column: "n", Op: Ge, Val: I(int64(loRaw % 100))})
		}
		if useHi {
			conj = append(conj, &Cmp{Column: "n", Op: Lt, Val: I(int64(hiRaw % 100))})
		}
		p := AndOf(conj...)
		r1, err1 := indexed.Select(p)
		r2, err2 := plain.Select(p)
		if err1 != nil || err2 != nil || len(r1) != len(r2) {
			return false
		}
		for i := range r1 {
			if !r1[i][0].Equal(r2[i][0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectHashVsScan(b *testing.B) {
	mk := func(indexed bool) *Table {
		tbl := NewTable(MustSchema("t", "id",
			Column{Name: "id", Type: Int64},
			Column{Name: "grp", Type: String},
		))
		if indexed {
			_ = tbl.CreateIndex("grp", HashIndex)
		}
		for i := 0; i < 20_000; i++ {
			_ = tbl.Insert(Row{I(int64(i)), S(fmt.Sprintf("g%d", i%100))})
		}
		return tbl
	}
	for _, tc := range []struct {
		name    string
		indexed bool
	}{{"hash", true}, {"scan", false}} {
		tbl := mk(tc.indexed)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.Select(Eq1("grp", S("g42"))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
