package relstore

import (
	"fmt"
	"sort"
)

// Access enumerates the access paths the planner can choose.
type Access uint8

// Access paths in decreasing order of preference.
const (
	AccessPrimaryKey Access = iota
	AccessHashIndex
	AccessOrderedIndex
	AccessScan
)

func (a Access) String() string {
	switch a {
	case AccessPrimaryKey:
		return "primary-key"
	case AccessHashIndex:
		return "hash-index"
	case AccessOrderedIndex:
		return "ordered-index"
	default:
		return "full-scan"
	}
}

// Plan describes how a Select was (or would be) executed.
type Plan struct {
	Table    string
	Access   Access
	Column   string // index column, when an index is used
	Examined int    // rows fetched before residual filtering
	Returned int
}

func (p Plan) String() string {
	if p.Column != "" {
		return fmt.Sprintf("%s via %s(%s): examined %d, returned %d",
			p.Table, p.Access, p.Column, p.Examined, p.Returned)
	}
	return fmt.Sprintf("%s via %s: examined %d, returned %d",
		p.Table, p.Access, p.Examined, p.Returned)
}

// Select returns the rows matching p, ordered by primary key.
func (t *Table) Select(p Pred) ([]Row, error) {
	rows, _, err := t.SelectPlan(p)
	return rows, err
}

// SelectPlan is Select, additionally reporting the chosen access path.
//
// Planning is index-aware: an equality conjunct on the primary key becomes
// a point lookup; an equality conjunct on a hash- or ordered-indexed column
// becomes an index probe; range conjuncts on an ordered-indexed column
// become a bounded range walk; otherwise the table is scanned. The full
// predicate is always re-applied as a residual filter, so the planner can
// never change results, only cost.
func (t *Table) SelectPlan(p Pred) ([]Row, Plan, error) {
	if p == nil {
		p = TruePred{}
	}
	if err := Validate(p, t.schema); err != nil {
		return nil, Plan{}, err
	}
	plan := Plan{Table: t.schema.Name, Access: AccessScan}

	conjuncts := flattenAnd(p)

	t.mu.RLock()
	defer t.mu.RUnlock()

	var candidates []Row
	switch {
	case t.planPointLookup(conjuncts, &plan, &candidates),
		t.planHashProbe(conjuncts, &plan, &candidates),
		t.planOrderedRange(conjuncts, &plan, &candidates):
	default:
		for _, row := range t.rows {
			candidates = append(candidates, row)
		}
		plan.Examined = len(candidates)
	}

	var out []Row
	for _, row := range candidates {
		ok, err := Eval(p, t.schema, row)
		if err != nil {
			return nil, plan, err
		}
		if ok {
			out = append(out, row.Clone())
		}
	}
	ki := t.schema.keyIndex()
	sort.Slice(out, func(i, j int) bool {
		if c, ok := out[i][ki].Compare(out[j][ki]); ok {
			return c < 0
		}
		return out[i][ki].hashKey() < out[j][ki].hashKey()
	})
	plan.Returned = len(out)
	return out, plan, nil
}

// flattenAnd returns the conjuncts of p when it is a conjunction of simple
// comparisons (possibly nested Ands); otherwise it returns p's top-level
// Cmp if any. Disjunctions yield no usable conjuncts.
func flattenAnd(p Pred) []*Cmp {
	var out []*Cmp
	var walk func(Pred) bool
	walk = func(q Pred) bool {
		switch v := q.(type) {
		case *Cmp:
			out = append(out, v)
			return true
		case *And:
			for _, sub := range v.Preds {
				// Non-Cmp members are fine; they just do not contribute
				// index opportunities.
				walk(sub)
			}
			return true
		default:
			return false
		}
	}
	walk(p)
	return out
}

func (t *Table) planPointLookup(conjuncts []*Cmp, plan *Plan, out *[]Row) bool {
	for _, c := range conjuncts {
		if c.Op == Eq && c.Column == t.schema.Key {
			plan.Access = AccessPrimaryKey
			plan.Column = t.schema.Key
			if row, ok := t.rows[c.Val.hashKey()]; ok {
				*out = append(*out, row)
			}
			plan.Examined = len(*out)
			return true
		}
	}
	return false
}

func (t *Table) planHashProbe(conjuncts []*Cmp, plan *Plan, out *[]Row) bool {
	for _, c := range conjuncts {
		if c.Op != Eq {
			continue
		}
		idx, ok := t.hashIdx[c.Column]
		if !ok {
			continue
		}
		plan.Access = AccessHashIndex
		plan.Column = c.Column
		for _, pk := range idx.buckets[c.Val.hashKey()] {
			*out = append(*out, t.rows[pk])
		}
		plan.Examined = len(*out)
		return true
	}
	return false
}

func (t *Table) planOrderedRange(conjuncts []*Cmp, plan *Plan, out *[]Row) bool {
	// Gather bounds per ordered-indexed column.
	type bound struct {
		lo, hi       Value
		loOK, hiOK   bool
		loInc, hiInc bool
		eq           bool
	}
	best := ""
	var bb bound
	for col := range t.ordIdx {
		var b bound
		usable := false
		for _, c := range conjuncts {
			if c.Column != col || c.Val.IsNull() {
				continue
			}
			switch c.Op {
			case Eq:
				b.lo, b.hi, b.loOK, b.hiOK, b.loInc, b.hiInc, b.eq = c.Val, c.Val, true, true, true, true, true
				usable = true
			case Gt, Ge:
				if !b.loOK || tighterLo(c.Val, b.lo) {
					b.lo, b.loOK, b.loInc = c.Val, true, c.Op == Ge
				}
				usable = true
			case Lt, Le:
				if !b.hiOK || tighterHi(c.Val, b.hi) {
					b.hi, b.hiOK, b.hiInc = c.Val, true, c.Op == Le
				}
				usable = true
			}
			if b.eq {
				break
			}
		}
		if usable && (best == "" || b.eq) {
			best, bb = col, b
			if b.eq {
				break
			}
		}
	}
	if best == "" {
		return false
	}
	idx := t.ordIdx[best]
	plan.Access = AccessOrderedIndex
	plan.Column = best
	emit := func(k ordKey, _ struct{}) bool {
		if k.val.IsNull() {
			return true // NULLs sort first; skip and keep walking
		}
		if bb.loOK {
			c, ok := k.val.Compare(bb.lo)
			if !ok || c < 0 || (c == 0 && !bb.loInc) {
				return true
			}
		}
		if bb.hiOK {
			c, ok := k.val.Compare(bb.hi)
			if !ok {
				return true // incomparable (mixed types): skip
			}
			if c > 0 || (c == 0 && !bb.hiInc) {
				return false // past the upper bound: stop
			}
		}
		*out = append(*out, t.rows[k.pk])
		return true
	}
	if bb.loOK {
		idx.tree.AscendGreaterOrEqual(ordKey{bb.lo, ""}, emit)
	} else {
		idx.tree.Ascend(emit)
	}
	plan.Examined = len(*out)
	return true
}

func tighterLo(candidate, current Value) bool {
	c, ok := candidate.Compare(current)
	return ok && c > 0
}

func tighterHi(candidate, current Value) bool {
	c, ok := candidate.Compare(current)
	return ok && c < 0
}

// Count returns the number of rows matching p.
func (t *Table) Count(p Pred) (int, error) {
	rows, err := t.Select(p)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Project returns the named columns of each row, in the given order.
func Project(schema *Schema, rows []Row, columns ...string) ([][]Value, error) {
	idx := make([]int, len(columns))
	for i, c := range columns {
		ci, err := schema.ColumnIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
	}
	out := make([][]Value, len(rows))
	for i, r := range rows {
		vals := make([]Value, len(idx))
		for j, ci := range idx {
			vals[j] = r[ci]
		}
		out[i] = vals
	}
	return out, nil
}

// JoinRow pairs a row from each side of a join.
type JoinRow struct {
	Left, Right Row
}

// HashJoin performs an equi-join between rows of two tables on the named
// columns, using a hash table built over the smaller input.
func HashJoin(ls *Schema, lrows []Row, lcol string, rs *Schema, rrows []Row, rcol string) ([]JoinRow, error) {
	li, err := ls.ColumnIndex(lcol)
	if err != nil {
		return nil, err
	}
	ri, err := rs.ColumnIndex(rcol)
	if err != nil {
		return nil, err
	}
	swap := len(lrows) > len(rrows)
	buildRows, probeRows := lrows, rrows
	buildCol, probeCol := li, ri
	if swap {
		buildRows, probeRows = rrows, lrows
		buildCol, probeCol = ri, li
	}
	ht := make(map[string][]Row, len(buildRows))
	for _, r := range buildRows {
		v := r[buildCol]
		if v.IsNull() {
			continue
		}
		k := v.hashKey()
		ht[k] = append(ht[k], r)
	}
	var out []JoinRow
	for _, pr := range probeRows {
		v := pr[probeCol]
		if v.IsNull() {
			continue
		}
		for _, br := range ht[v.hashKey()] {
			if swap {
				out = append(out, JoinRow{Left: pr, Right: br})
			} else {
				out = append(out, JoinRow{Left: br, Right: pr})
			}
		}
	}
	return out, nil
}
