package xmldoc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDocument(t *testing.T) {
	d := NewDocument("annotation")
	if d.Root == nil || d.Root.Name != "annotation" || d.Root.Kind != ElementNode {
		t.Fatalf("Root = %+v", d.Root)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	got, ok := d.NodeByID(d.Root.ID)
	if !ok || got != d.Root {
		t.Fatal("NodeByID failed to find the root")
	}
}

func TestBuildTree(t *testing.T) {
	d := NewDocument("annotation")
	meta := d.AddElement(d.Root, "meta")
	d.AddElementText(meta, "creator", "condit")
	body := d.AddElementText(d.Root, "body", "contains protease domain")
	body.SetAttr("lang", "en")
	body.SetAttr("lang", "en-US") // replace

	if len(d.Root.Children) != 2 {
		t.Fatalf("root has %d children", len(d.Root.Children))
	}
	if v, ok := body.Attr("lang"); !ok || v != "en-US" {
		t.Fatalf("attr lang = (%q,%v)", v, ok)
	}
	if _, ok := body.Attr("missing"); ok {
		t.Fatal("missing attribute reported present")
	}
	if got := d.Root.Text(); got != "conditcontains protease domain" {
		t.Fatalf("Text() = %q", got)
	}
	if meta.FirstChildElement("creator") == nil {
		t.Fatal("FirstChildElement missed creator")
	}
	if meta.FirstChildElement("nope") != nil {
		t.Fatal("FirstChildElement invented a node")
	}
}

func TestAppendChildErrors(t *testing.T) {
	d1 := NewDocument("a")
	d2 := NewDocument("b")
	n2 := d2.CreateElement("x")
	if err := d1.AppendChild(d1.Root, n2); !errors.Is(err, ErrForeignNode) {
		t.Fatalf("foreign node: err = %v", err)
	}
	child := d1.AddElement(d1.Root, "c")
	if err := d1.AppendChild(d1.Root, child); err == nil {
		t.Fatal("re-attaching an attached node should fail")
	}
	if err := d1.AppendChild(d1.Root, d1.Root); err == nil {
		t.Fatal("attaching the root to itself should fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	const src = `<annotation id="a42">
  <dc>
    <creator>gupta</creator>
    <subject>influenza NS1</subject>
  </dc>
  <body>The <b>protease</b> site overlaps segment 3.</body>
  <!--reviewed-->
</annotation>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Name != "annotation" {
		t.Fatalf("root = %q", d.Root.Name)
	}
	if v, _ := d.Root.Attr("id"); v != "a42" {
		t.Fatalf("id attr = %q", v)
	}
	dc := d.Root.FirstChildElement("dc")
	if dc == nil || len(dc.ChildElements("")) != 2 {
		t.Fatal("dc children wrong")
	}
	body := d.Root.FirstChildElement("body")
	if body == nil || !strings.Contains(body.Text(), "protease") {
		t.Fatalf("body text = %q", body.Text())
	}
	// Round trip: serialise and reparse, then compare structure.
	d2, err := ParseString(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, d2) {
		t.Fatalf("round trip changed the document:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<unclosed>",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseSkipsInterElementWhitespace(t *testing.T) {
	d, err := ParseString("<a>\n  <b>x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 (whitespace dropped)", len(d.Root.Children))
	}
}

func TestEscaping(t *testing.T) {
	d := NewDocument("a")
	d.AddElementText(d.Root, "t", `<x> & "y" 'z'`)
	el := d.Root.FirstChildElement("t")
	el.SetAttr("v", `a<b&"c"`)
	out := d.String()
	if strings.Contains(out, `<x>`) || !strings.Contains(out, "&lt;x&gt;") {
		t.Fatalf("text not escaped: %s", out)
	}
	d2, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Root.FirstChildElement("t").Text(); got != `<x> & "y" 'z'` {
		t.Fatalf("unescaped text = %q", got)
	}
	if got, _ := d2.Root.FirstChildElement("t").Attr("v"); got != `a<b&"c"` {
		t.Fatalf("unescaped attr = %q", got)
	}
}

func TestDescendantsOrderAndStop(t *testing.T) {
	d, err := ParseString(`<r><a><b>1</b></a><c/><d>2</d></r>`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	d.Root.Descendants(func(n *Node) bool {
		if n.Kind == ElementNode {
			names = append(names, n.Name)
		}
		return true
	})
	want := []string{"a", "b", "c", "d"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Descendants order = %v, want %v", names, want)
	}
	count := 0
	d.Root.Descendants(func(*Node) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestPath(t *testing.T) {
	d, err := ParseString(`<r><s>one</s><s>two</s><u><v/></u></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ss := d.Root.ChildElements("s")
	if got := ss[0].Path(); got != "/r/s[1]" {
		t.Fatalf("Path = %q", got)
	}
	if got := ss[1].Path(); got != "/r/s[2]" {
		t.Fatalf("Path = %q", got)
	}
	v := d.Root.FirstChildElement("u").FirstChildElement("v")
	if got := v.Path(); got != "/r/u/v" {
		t.Fatalf("Path = %q", got)
	}
}

func TestEqual(t *testing.T) {
	a, _ := ParseString(`<r x="1" y="2"><a>t</a></r>`)
	b, _ := ParseString(`<r y="2" x="1"><a>t</a></r>`) // attr order ignored
	c, _ := ParseString(`<r x="1" y="2"><a>T</a></r>`)
	if !Equal(a, b) {
		t.Fatal("attribute order should not affect equality")
	}
	if Equal(a, c) {
		t.Fatal("different text reported equal")
	}
}

func TestKeywords(t *testing.T) {
	d, _ := ParseString(`<a term="protein.TP53"><b>Protease in NS1; protease!</b></a>`)
	kws := d.Keywords()
	has := func(w string) bool {
		for _, k := range kws {
			if k == w {
				return true
			}
		}
		return false
	}
	if !has("protein.tp53") {
		t.Fatalf("keywords %v missing protein.tp53", kws)
	}
	if !has("protease") || !has("ns1") {
		t.Fatalf("keywords %v missing expected words", kws)
	}
	// Deduplicated.
	count := 0
	for _, k := range kws {
		if k == "protease" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("keyword protease appears %d times", count)
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"Deep Cerebellar nuclei", "deep,cerebellar,nuclei"},
		{"protein.TP53", "protein.tp53"},
		{"a-synuclein (SNCA)", "a-synuclein,snca"},
		{"", ""},
		{"...", "..."},
		{"x;y,z", "x,y,z"},
	}
	for _, tc := range tests {
		got := strings.Join(Tokenize(tc.in), ",")
		if got != tc.want {
			t.Errorf("Tokenize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestQuickSerialiseParse round-trips randomly generated trees.
func TestQuickSerialiseParse(t *testing.T) {
	type spec struct {
		Names  []uint8
		Texts  []string
		Attrs  []uint8
		Fanout uint8
	}
	names := []string{"alpha", "beta", "gamma", "delta", "note", "ref"}
	check := func(s spec) bool {
		d := NewDocument("root")
		cur := d.Root
		for i, b := range s.Names {
			el := d.AddElement(cur, names[int(b)%len(names)])
			if i < len(s.Texts) && s.Texts[i] != "" {
				d.AddText(el, sanitize(s.Texts[i]))
			}
			if i < len(s.Attrs) {
				el.SetAttr("k", sanitize(string(rune('a'+s.Attrs[i]%26))))
			}
			if s.Fanout%2 == 0 {
				cur = el // go deeper
			}
		}
		d2, err := ParseString(d.String())
		if err != nil {
			return false
		}
		return Equal(d, d2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sanitize keeps quick-generated strings printable and trim-safe so that
// the whitespace-dropping parser rule doesn't change equality.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r > 0x20 && r < 0x7f {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "x"
	}
	return sb.String()
}
