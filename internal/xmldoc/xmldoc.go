// Package xmldoc provides the XML document model underlying Graphitti's
// annotation contents.
//
// The paper stores each annotation content as "an XML document whose
// elements consist of Dublin core attributes and other user-defined tags",
// and the a-graph "connects nodes of the XML annotation trees" to index and
// ontology nodes. The model here is therefore a DOM whose nodes carry
// stable numeric IDs so that external structures (the a-graph, the keyword
// index) can reference individual elements.
package xmldoc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind discriminates node types.
type Kind uint8

const (
	// ElementNode is a tagged element; it may carry attributes and children.
	ElementNode Kind = iota
	// TextNode is character data; Value holds the text.
	TextNode
	// CommentNode is an XML comment; Value holds the comment body.
	CommentNode
)

func (k Kind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// ErrNoRoot is returned when parsing input that contains no element.
var ErrNoRoot = errors.New("xmldoc: document has no root element")

// ErrForeignNode is returned when a node from another document is supplied.
var ErrForeignNode = errors.New("xmldoc: node belongs to a different document")

// Attr is a name/value attribute pair on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a single DOM node. Nodes are created through a Document and carry
// an ID that is unique within it.
type Node struct {
	ID       uint64
	Kind     Kind
	Name     string // element name (ElementNode only)
	Value    string // character data (TextNode, CommentNode)
	Attrs    []Attr
	Parent   *Node
	Children []*Node
	doc      *Document
}

// Document owns a tree of nodes and assigns their IDs.
type Document struct {
	Root   *Node
	nextID uint64
	byID   map[uint64]*Node
}

// NewDocument returns an empty document with a root element of the given
// name.
func NewDocument(rootName string) *Document {
	d := &Document{byID: make(map[uint64]*Node)}
	d.Root = d.newNode(ElementNode)
	d.Root.Name = rootName
	return d
}

func (d *Document) newNode(kind Kind) *Node {
	d.nextID++
	n := &Node{ID: d.nextID, Kind: kind, doc: d}
	d.byID[n.ID] = n
	return n
}

// NodeByID returns the node with the given ID, if it exists in this
// document.
func (d *Document) NodeByID(id uint64) (*Node, bool) {
	n, ok := d.byID[id]
	return n, ok
}

// Len reports the number of nodes in the document.
func (d *Document) Len() int { return len(d.byID) }

// CreateElement returns a new, unattached element node.
func (d *Document) CreateElement(name string) *Node {
	n := d.newNode(ElementNode)
	n.Name = name
	return n
}

// CreateText returns a new, unattached text node.
func (d *Document) CreateText(text string) *Node {
	n := d.newNode(TextNode)
	n.Value = text
	return n
}

// CreateComment returns a new, unattached comment node.
func (d *Document) CreateComment(text string) *Node {
	n := d.newNode(CommentNode)
	n.Value = text
	return n
}

// AppendChild attaches child as the last child of parent. Both nodes must
// belong to this document and the child must be detached.
func (d *Document) AppendChild(parent, child *Node) error {
	if parent.doc != d || child.doc != d {
		return ErrForeignNode
	}
	if child.Parent != nil {
		return fmt.Errorf("xmldoc: node %d already attached", child.ID)
	}
	if child == parent {
		return errors.New("xmldoc: cannot append a node to itself")
	}
	child.Parent = parent
	parent.Children = append(parent.Children, child)
	return nil
}

// AddElement creates an element, appends it under parent and returns it.
func (d *Document) AddElement(parent *Node, name string) *Node {
	n := d.CreateElement(name)
	// Append cannot fail: n is fresh and both nodes belong to d.
	_ = d.AppendChild(parent, n)
	return n
}

// AddText creates a text node under parent and returns it.
func (d *Document) AddText(parent *Node, text string) *Node {
	n := d.CreateText(text)
	_ = d.AppendChild(parent, n)
	return n
}

// AddElementText is the common "leaf element with text content" helper: it
// creates <name>text</name> under parent and returns the element.
func (d *Document) AddElementText(parent *Node, name, text string) *Node {
	e := d.AddElement(parent, name)
	d.AddText(e, text)
	return e
}

// SetAttr sets (or replaces) an attribute on an element node.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{name, value})
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenation of all text content in the subtree rooted
// at n, in document order.
func (n *Node) Text() string {
	var sb strings.Builder
	n.visitText(&sb)
	return sb.String()
}

func (n *Node) visitText(sb *strings.Builder) {
	if n.Kind == TextNode {
		sb.WriteString(n.Value)
		return
	}
	for _, c := range n.Children {
		c.visitText(sb)
	}
}

// ChildElements returns the element children of n, in order. If name is
// non-empty only elements with that name are returned.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildElement returns the first element child named name, or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// Descendants visits every node in the subtree rooted at n (excluding n) in
// document order until fn returns false.
func (n *Node) Descendants(fn func(*Node) bool) {
	n.walkChildren(fn)
}

func (n *Node) walkChildren(fn func(*Node) bool) bool {
	for _, c := range n.Children {
		if !fn(c) {
			return false
		}
		if !c.walkChildren(fn) {
			return false
		}
	}
	return true
}

// Path returns a simple absolute location path for the node, e.g.
// "/annotation/content[2]". Positional predicates count same-named
// siblings.
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Name
	}
	idx, count := 0, 0
	for _, sib := range n.Parent.Children {
		if sib.Kind == ElementNode && sib.Name == n.Name {
			count++
			if sib == n {
				idx = count
			}
		}
	}
	step := n.Name
	if n.Kind == TextNode {
		step = "text()"
	}
	if count > 1 {
		return fmt.Sprintf("%s/%s[%d]", n.Parent.Path(), step, idx)
	}
	return n.Parent.Path() + "/" + step
}

// Document returns the document owning this node.
func (n *Node) Document() *Document { return n.doc }

// Parse reads an XML document from r.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	d := &Document{byID: make(map[uint64]*Node)}
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := d.newNode(ElementNode)
			n.Name = t.Name.Local
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{a.Name.Local, a.Value})
			}
			if len(stack) == 0 {
				if d.Root != nil {
					return nil, errors.New("xmldoc: multiple root elements")
				}
				d.Root = n
			} else {
				parent := stack[len(stack)-1]
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldoc: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace outside the root
			}
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			n := d.newNode(TextNode)
			n.Value = text
			parent := stack[len(stack)-1]
			n.Parent = parent
			parent.Children = append(parent.Children, n)
		case xml.Comment:
			if len(stack) == 0 {
				continue
			}
			n := d.newNode(CommentNode)
			n.Value = string(t)
			parent := stack[len(stack)-1]
			n.Parent = parent
			parent.Children = append(parent.Children, n)
		}
	}
	if d.Root == nil {
		return nil, ErrNoRoot
	}
	return d, nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// WriteTo serialises the document to w with two-space indentation.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	writeNode(&sb, d.Root, 0)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String returns the serialised document.
func (d *Document) String() string {
	var sb strings.Builder
	writeNode(&sb, d.Root, 0)
	return sb.String()
}

func writeNode(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case TextNode:
		sb.WriteString(indent)
		xmlEscape(sb, n.Value)
		sb.WriteByte('\n')
	case CommentNode:
		sb.WriteString(indent)
		sb.WriteString("<!--")
		sb.WriteString(n.Value)
		sb.WriteString("-->\n")
	case ElementNode:
		sb.WriteString(indent)
		if len(n.Children) == 0 {
			writeOpenTag(sb, n, true)
			sb.WriteByte('\n')
			return
		}
		// Elements with text children are rendered inline: injecting
		// indentation inside mixed content would alter the text.
		if n.hasTextChild() {
			writeInline(sb, n)
			sb.WriteByte('\n')
			return
		}
		writeOpenTag(sb, n, false)
		sb.WriteByte('\n')
		for _, c := range n.Children {
			writeNode(sb, c, depth+1)
		}
		sb.WriteString(indent)
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteString(">\n")
	}
}

func (n *Node) hasTextChild() bool {
	for _, c := range n.Children {
		if c.Kind == TextNode {
			return true
		}
	}
	return false
}

func writeOpenTag(sb *strings.Builder, n *Node, selfClose bool) {
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		xmlEscape(sb, a.Value)
		sb.WriteByte('"')
	}
	if selfClose {
		sb.WriteString("/>")
	} else {
		sb.WriteByte('>')
	}
}

// writeInline serialises the subtree with no added whitespace.
func writeInline(sb *strings.Builder, n *Node) {
	switch n.Kind {
	case TextNode:
		xmlEscape(sb, n.Value)
	case CommentNode:
		sb.WriteString("<!--")
		sb.WriteString(n.Value)
		sb.WriteString("-->")
	case ElementNode:
		if len(n.Children) == 0 {
			writeOpenTag(sb, n, true)
			return
		}
		writeOpenTag(sb, n, false)
		for _, c := range n.Children {
			writeInline(sb, c)
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteString(">")
	}
}

func xmlEscape(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		case '\'':
			sb.WriteString("&apos;")
		default:
			sb.WriteRune(r)
		}
	}
}

// Equal reports whether two documents have the same structure and content,
// ignoring node IDs.
func Equal(a, b *Document) bool {
	return nodeEqual(a.Root, b.Root)
}

func nodeEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	as := append([]Attr(nil), a.Attrs...)
	bs := append([]Attr(nil), b.Attrs...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Keywords returns the lower-cased word tokens appearing in the document's
// text content and attribute values. Used by the annotation store's keyword
// index (ablation A6).
func (d *Document) Keywords() []string {
	seen := make(map[string]bool)
	var words []string
	add := func(s string) {
		for _, w := range Tokenize(s) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == TextNode {
			add(n.Value)
		}
		for _, a := range n.Attrs {
			add(a.Value)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(d.Root)
	sort.Strings(words)
	return words
}

// Tokenize splits s into lower-cased word tokens. Letters, digits, '.', '-'
// and '_' are word characters (so terms like "protein.TP53" survive as one
// token); everything else separates tokens.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}
