package prop

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
)

// TestStressDeltaExactness is the acceptance gate for incremental
// maintenance: 8 writers race randomized commits and deletes (with
// overlap, shared-referent and closure rules active), and at quiescence
// the delta-maintained derived table must be byte-identical to a
// from-scratch recompute of the final view. Run under -race in CI.
func TestStressDeltaExactness(t *testing.T) {
	const (
		writers      = 8
		opsPerWriter = 120
	)
	s := core.NewStore()
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 5000))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	o := ontology.New("go")
	terms := []string{"enzyme", "hydrolase", "protease", "kinase"}
	for _, id := range terms {
		if _, err := o.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"hydrolase", "enzyme"}, {"protease", "hydrolase"}, {"kinase", "enzyme"}} {
		if err := o.AddEdge(e[0], e[1], ontology.IsA, ontology.Some); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RegisterOntology(o); err != nil {
		t.Fatal(err)
	}

	e := Attach(s)
	for _, r := range []Rule{
		{ID: "ov", Edge: EdgeOverlap, Domain: "chr1"},
		{ID: "sh", Edge: EdgeSharedReferent},
		{ID: "cl", Edge: EdgeOntologyClosure, Ontology: "go"},
		{ID: "kw", Edge: EdgeOverlap, Keyword: "hotspot"},
	} {
		if err := e.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// A rule-churn writer races adds/deletes of one rule against the
	// annotation writers: every swap + recompute must be atomic with
	// respect to concurrent deltas (core.UpdateDerivedRules), or the
	// final table diverges from the final rule set's recompute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := e.AddRule(Rule{ID: "churn", Edge: EdgeOverlap, Domain: "chr1"}); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
			if err := e.DeleteRule("churn"); err != nil {
				t.Errorf("churn delete: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var mine []uint64
			for i := 0; i < opsPerWriter; i++ {
				if len(mine) > 0 && rng.Intn(100) < 30 {
					// Delete one of this writer's own annotations (no
					// cross-writer deletes, so every delete succeeds).
					k := rng.Intn(len(mine))
					id := mine[k]
					mine = append(mine[:k], mine[k+1:]...)
					if err := s.DeleteAnnotation(id); err != nil {
						t.Errorf("writer %d delete %d: %v", w, id, err)
						return
					}
					continue
				}
				// Coarse positions make mark collisions (shared referents)
				// and overlaps both common.
				lo := int64(rng.Intn(195)) * 100
				hi := lo + 100 + int64(rng.Intn(3))*100
				m, err := s.MarkDomainInterval("chr1", interval.Interval{Lo: lo, Hi: hi})
				if err != nil {
					t.Errorf("writer %d mark: %v", w, err)
					return
				}
				body := "signal"
				if rng.Intn(3) == 0 {
					body = "hotspot signal"
				}
				b := s.NewAnnotation().Creator("w").Date("2026-01-01").Body(body).Refer(m)
				if rng.Intn(2) == 0 {
					b.OntologyRef("go", terms[rng.Intn(len(terms))])
				}
				ann, err := s.Commit(b)
				if err != nil {
					t.Errorf("writer %d commit: %v", w, err)
					return
				}
				mine = append(mine, ann.ID)
			}
		}(w)
	}
	wg.Wait()

	v := s.View()
	got := v.DerivedAll()
	want := flatten(e.Recompute(v))
	if len(got) == 0 {
		t.Fatal("stress produced no derived facts; workload is not exercising the engine")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta-maintained derived table diverged from recompute: %d maintained vs %d recomputed facts",
			len(got), len(want))
	}
	if v.DerivedCount() != len(got) {
		t.Fatalf("DerivedCount %d != len(DerivedAll) %d", v.DerivedCount(), len(got))
	}
	assertTargetIndexParity(t, v)
}

// assertTargetIndexParity proves the delta-maintained derived target
// index exactly mirrors the derived table: the indexed target set, and
// every per-target fact list (content and order), must match what a
// full table scan produces — no stale entries, no missing ones.
func assertTargetIndexParity(t *testing.T, v *core.View) {
	t.Helper()
	byTarget := make(map[agraph.NodeRef][]core.DerivedFact)
	v.DerivedEach(func(f core.DerivedFact) bool {
		byTarget[f.Target] = append(byTarget[f.Target], f)
		return true
	})
	indexed := v.DerivedTargets()
	if len(indexed) != len(byTarget) {
		t.Fatalf("target index holds %d targets, table scan finds %d", len(indexed), len(byTarget))
	}
	for _, target := range indexed {
		want, ok := byTarget[target]
		if !ok {
			t.Fatalf("target index holds stale target %v", target)
		}
		if got := v.DerivedTargeting(target); !reflect.DeepEqual(got, want) {
			t.Fatalf("index facts for %v diverged from table scan:\n got %v\nwant %v", target, got, want)
		}
	}
}
