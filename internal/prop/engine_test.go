package prop

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/rtree"
)

// newSeqStore returns a store with one long DNA sequence owning domain
// "chr1".
func newSeqStore(t *testing.T) *core.Store {
	t.Helper()
	s := core.NewStore()
	sq, err := seq.New("NC_1", seq.DNA, strings.Repeat("ACGT", 2500))
	if err != nil {
		t.Fatal(err)
	}
	sq.Domain = "chr1"
	if err := s.RegisterSequence(sq); err != nil {
		t.Fatal(err)
	}
	return s
}

func commitInterval(t *testing.T, s *core.Store, lo, hi int64, body string, terms ...core.TermRef) *core.Annotation {
	t.Helper()
	m, err := s.MarkDomainInterval("chr1", interval.Interval{Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	b := s.NewAnnotation().Creator("t").Date("2026-01-01").Body(body).Refer(m)
	for _, tr := range terms {
		b.OntologyRef(tr.Ontology, tr.TermID)
	}
	ann, err := s.Commit(b)
	if err != nil {
		t.Fatal(err)
	}
	return ann
}

// assertExact checks the incrementally-maintained derived table equals a
// from-scratch recompute of the same view, byte for byte.
func assertExact(t *testing.T, s *core.Store, e *Engine) {
	t.Helper()
	v := s.View()
	got := v.DerivedAll()
	want := flatten(e.Recompute(v))
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("maintained derived set diverged from recompute:\n got %v\nwant %v", got, want)
	}
}

// flatten orders a recompute map the way View.DerivedAll does: ascending
// source, canonical fact order within a source.
func flatten(m map[uint64][]core.DerivedFact) []core.DerivedFact {
	var srcs []uint64
	for src := range m {
		srcs = append(srcs, src)
	}
	for i := 1; i < len(srcs); i++ {
		for j := i; j > 0 && srcs[j-1] > srcs[j]; j-- {
			srcs[j-1], srcs[j] = srcs[j], srcs[j-1]
		}
	}
	var out []core.DerivedFact
	for _, src := range srcs {
		out = append(out, m[src]...)
	}
	return out
}

func TestOverlapEdge(t *testing.T) {
	s := newSeqStore(t)
	e := Attach(s)
	a1 := commitInterval(t, s, 100, 200, "site one")
	a2 := commitInterval(t, s, 150, 250, "site two")
	commitInterval(t, s, 500, 600, "far away")

	if err := e.AddRule(Rule{ID: "ov", Edge: EdgeOverlap, Domain: "chr1"}); err != nil {
		t.Fatal(err)
	}
	// a1 and a2 overlap; each derives onto the other's referent.
	f1 := s.DerivedFrom(a1.ID)
	if len(f1) != 1 || f1[0].Target != agraph.Referent(a2.ReferentIDs[0]) {
		t.Fatalf("a1 facts = %v, want one fact targeting a2's referent", f1)
	}
	if f1[0].Rule != "ov" || f1[0].Source != a1.ID {
		t.Fatalf("bad provenance: %+v", f1[0])
	}
	if got := s.DerivedFrom(3); got != nil {
		t.Fatalf("non-overlapping annotation has facts: %v", got)
	}
	if s.View().DerivedCount() != 2 {
		t.Fatalf("derived count = %d, want 2", s.View().DerivedCount())
	}
	assertExact(t, s, e)

	// Incremental: a new annotation overlapping both extends their sets.
	a4 := commitInterval(t, s, 180, 220, "bridges")
	if len(s.DerivedFrom(a4.ID)) != 2 {
		t.Fatalf("a4 facts = %v, want 2", s.DerivedFrom(a4.ID))
	}
	if len(s.DerivedFrom(a1.ID)) != 2 {
		t.Fatalf("a1 facts after bridge = %v, want 2", s.DerivedFrom(a1.ID))
	}
	assertExact(t, s, e)

	// Incremental: deleting the bridge restores the old sets and leaves
	// no fact targeting its garbage-collected referent.
	if err := s.DeleteAnnotation(a4.ID); err != nil {
		t.Fatal(err)
	}
	if len(s.DerivedFrom(a1.ID)) != 1 || len(s.DerivedFrom(a4.ID)) != 0 {
		t.Fatalf("facts after delete: a1=%v a4=%v", s.DerivedFrom(a1.ID), s.DerivedFrom(a4.ID))
	}
	assertExact(t, s, e)
}

func TestSharedReferentEdge(t *testing.T) {
	s := newSeqStore(t)
	e := Attach(s)
	if err := e.AddRule(Rule{ID: "sh", Edge: EdgeSharedReferent}); err != nil {
		t.Fatal(err)
	}
	// Identical marks dedup into one shared referent.
	a1 := commitInterval(t, s, 100, 200, "first opinion")
	a2 := commitInterval(t, s, 100, 200, "second opinion")
	f1 := s.DerivedFrom(a1.ID)
	if len(f1) != 1 || f1[0].Target != agraph.ContentRoot(a2.ID) {
		t.Fatalf("a1 facts = %v, want one fact targeting a2", f1)
	}
	wantWitness := fmt.Sprintf("shared ref%d", a1.ReferentIDs[0])
	if f1[0].Witness != wantWitness {
		t.Fatalf("witness = %q, want %q", f1[0].Witness, wantWitness)
	}
	assertExact(t, s, e)

	if err := s.DeleteAnnotation(a2.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.DerivedFrom(a1.ID); got != nil {
		t.Fatalf("a1 still derives onto deleted a2: %v", got)
	}
	assertExact(t, s, e)
}

func TestOntologyClosureEdge(t *testing.T) {
	s := newSeqStore(t)
	o := ontology.New("go")
	for _, id := range []string{"enzyme", "hydrolase", "protease", "serine-protease", "cell", "membrane"} {
		if _, err := o.AddTerm(id, id); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(from, to, rel string) {
		if err := o.AddEdge(from, to, rel, ontology.Some); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge("hydrolase", "enzyme", ontology.IsA)
	mustEdge("protease", "hydrolase", ontology.IsA)
	mustEdge("serine-protease", "protease", ontology.IsA)
	mustEdge("membrane", "cell", ontology.PartOf)
	if err := s.RegisterOntology(o); err != nil {
		t.Fatal(err)
	}
	e := Attach(s)
	if err := e.AddRule(Rule{ID: "cl", Edge: EdgeOntologyClosure, Ontology: "go"}); err != nil {
		t.Fatal(err)
	}

	ann := commitInterval(t, s, 10, 20, "cleaves", core.TermRef{Ontology: "go", TermID: "serine-protease"})
	facts := s.DerivedFrom(ann.ID)
	var targets []string
	for _, f := range facts {
		targets = append(targets, f.Target.Key)
	}
	want := []string{"go/enzyme", "go/hydrolase", "go/protease"}
	if !reflect.DeepEqual(targets, want) {
		t.Fatalf("closure targets = %v, want %v", targets, want)
	}
	assertExact(t, s, e)

	// Relation-restricted closure.
	if err := e.AddRule(Rule{ID: "po", Edge: EdgeOntologyClosure, Ontology: "go",
		Relations: []string{ontology.PartOf}}); err != nil {
		t.Fatal(err)
	}
	ann2 := commitInterval(t, s, 30, 40, "membrane bound", core.TermRef{Ontology: "go", TermID: "membrane"})
	var poTargets []string
	for _, f := range s.DerivedFrom(ann2.ID) {
		if f.Rule == "po" {
			poTargets = append(poTargets, f.Target.Key)
		}
	}
	if !reflect.DeepEqual(poTargets, []string{"go/cell"}) {
		t.Fatalf("part_of closure targets = %v, want [go/cell]", poTargets)
	}
	assertExact(t, s, e)
}

func TestCoRegisteredEdge(t *testing.T) {
	s := core.NewStore()
	cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 10_000, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterCoordinateSystem(cs); err != nil {
		t.Fatal(err)
	}
	addImage := func(id string, ox, oy float64) {
		reg := imaging.Identity(2)
		reg.Offset = [rtree.MaxDims]float64{ox, oy}
		im, err := imaging.NewImage(id, "atlas", rtree.Rect2D(0, 0, 1000, 1000), reg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterImage(im); err != nil {
			t.Fatal(err)
		}
	}
	addImage("img-a", 0, 0)
	addImage("img-b", 500, 500) // overlaps img-a's footprint
	addImage("img-c", 5000, 5000)

	e := Attach(s)
	if err := e.AddRule(Rule{ID: "co", Edge: EdgeCoRegistered}); err != nil {
		t.Fatal(err)
	}
	m, err := s.MarkImageRegion("img-a", rtree.Rect2D(600, 600, 900, 900))
	if err != nil {
		t.Fatal(err)
	}
	ann, err := s.Commit(s.NewAnnotation().Creator("t").Date("2026-01-01").Body("lesion").Refer(m))
	if err != nil {
		t.Fatal(err)
	}
	facts := s.DerivedFrom(ann.ID)
	if len(facts) != 1 || facts[0].Target != agraph.Object(string(core.TypeImage), "img-b") {
		t.Fatalf("coreg facts = %v, want one fact targeting img-b", facts)
	}
	assertExact(t, s, e)

	// Registering a new overlapping image retroactively extends the set
	// (the register hook recomputes).
	addImage("img-d", 700, 700)
	facts = s.DerivedFrom(ann.ID)
	if len(facts) != 2 {
		t.Fatalf("coreg facts after new image = %v, want 2", facts)
	}
	assertExact(t, s, e)
}

func TestTriggerFilters(t *testing.T) {
	s := newSeqStore(t)
	e := Attach(s)
	if err := e.AddRule(Rule{ID: "kw", Edge: EdgeOverlap, Keyword: "Protease"}); err != nil {
		t.Fatal(err)
	}
	a1 := commitInterval(t, s, 100, 200, "protease cleavage site")
	a2 := commitInterval(t, s, 150, 250, "unrelated signal")
	// Keyword matching is case-insensitive; only a1 fires the rule.
	if got := s.DerivedFrom(a1.ID); len(got) != 1 {
		t.Fatalf("keyword-matching source facts = %v, want 1", got)
	}
	if got := s.DerivedFrom(a2.ID); got != nil {
		t.Fatalf("non-matching source has facts: %v", got)
	}
	assertExact(t, s, e)

	// Domain filter: a rule for another domain never fires.
	if err := e.AddRule(Rule{ID: "other", Edge: EdgeOverlap, Domain: "chr2"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range s.DerivedAll() {
		if f.Rule == "other" {
			t.Fatalf("rule for foreign domain produced fact %+v", f)
		}
	}
	// Kind filter: region-only rule ignores interval marks.
	if err := e.AddRule(Rule{ID: "regonly", Edge: EdgeOverlap, Kind: "region"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range s.DerivedAll() {
		if f.Rule == "regonly" {
			t.Fatalf("region-only rule fired on interval mark: %+v", f)
		}
	}
	assertExact(t, s, e)
}

func TestRuleCRUD(t *testing.T) {
	s := newSeqStore(t)
	e := Attach(s)
	if e2 := Attach(s); e2 != e {
		t.Fatal("Attach returned a second engine for the same store")
	}
	if err := e.AddRule(Rule{ID: "", Edge: EdgeOverlap}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("empty ID: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: "teleport"}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad edge: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: EdgeOverlap, Kind: "clade"}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad kind: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: EdgeOverlap, Term: "t"}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("term without ontology: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: EdgeOverlap, Relations: []string{"is_a"}}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("relations on non-closure edge: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: EdgeOntologyClosure, Ontology: "go", Domain: "chr1"}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("domain filter on closure edge: %v", err)
	}
	if err := e.AddRule(Rule{ID: "x", Edge: EdgeCoRegistered, Kind: "interval"}); !errors.Is(err, ErrBadRule) {
		t.Fatalf("interval kind on coregistered edge: %v", err)
	}

	if err := e.AddRule(Rule{ID: "ov", Edge: EdgeOverlap}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{ID: "ov", Edge: EdgeSharedReferent}); !errors.Is(err, ErrDuplicateRule) {
		t.Fatalf("duplicate: %v", err)
	}
	a1 := commitInterval(t, s, 1, 50, "a")
	commitInterval(t, s, 25, 75, "b")
	if len(s.DerivedFrom(a1.ID)) != 1 {
		t.Fatal("rule did not fire")
	}
	if got := RulesOf(s); len(got) != 1 || got[0].ID != "ov" {
		t.Fatalf("RulesOf = %v", got)
	}

	// Deleting the rule drops its facts atomically.
	if err := e.DeleteRule("ov"); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteRule("ov"); !errors.Is(err, ErrNoSuchRule) {
		t.Fatalf("double delete: %v", err)
	}
	if n := s.View().DerivedCount(); n != 0 {
		t.Fatalf("derived count after rule delete = %d", n)
	}
}

func TestParseRules(t *testing.T) {
	src := `[
	  {"id": "ov", "edge": "overlap", "domain": "chr1"},
	  {"id": "cl", "edge": "closure", "ontology": "go", "relations": ["is_a"]}
	]`
	rules, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID != "ov" || rules[1].Edge != EdgeOntologyClosure {
		t.Fatalf("parsed %v", rules)
	}
	if _, err := ParseRules(strings.NewReader(`[{"id":"x","edge":"nope"}]`)); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad edge: %v", err)
	}
	if _, err := ParseRules(strings.NewReader(`{not json`)); !errors.Is(err, ErrBadRule) {
		t.Fatalf("bad json: %v", err)
	}
}

// TestProvenanceTrace checks a derived fact can be walked back to its
// source through the store's provenance APIs.
func TestProvenanceTrace(t *testing.T) {
	s := newSeqStore(t)
	e := Attach(s)
	if err := e.AddRule(Rule{ID: "sh", Edge: EdgeSharedReferent}); err != nil {
		t.Fatal(err)
	}
	a1 := commitInterval(t, s, 100, 200, "first")
	a2 := commitInterval(t, s, 100, 200, "second")

	incoming := s.DerivedTargeting(agraph.ContentRoot(a2.ID))
	if len(incoming) != 1 || incoming[0].Source != a1.ID || incoming[0].Rule != "sh" {
		t.Fatalf("provenance of a2 = %v, want one fact from a1 via sh", incoming)
	}
	if ep := s.View().DerivedSourceEpoch(a1.ID); ep == 0 {
		t.Fatal("source epoch not recorded")
	}
}
