package prop

import "graphitti/internal/obs"

// Process-wide propagation metrics (see internal/obs for the scope
// model). The rules gauge is last-writer-wins across engines, which
// matches the one-store-per-process server. Delta/recompute *timing*
// lives in core (graphitti_store_propagation_delta_seconds), because the
// writer owns the critical section; these count what the engine itself
// decides. All are documented in docs/METRICS.md, which a test keeps in
// sync.
var (
	mRules = obs.NewGauge("graphitti_prop_rules",
		"Propagation rules currently installed.")
	mDeltas = obs.NewCounter("graphitti_prop_deltas_total",
		"Incremental derived-fact delta computations (one per commit or delete with rules installed).")
	mRecomputes = obs.NewCounter("graphitti_prop_recomputes_total",
		"Full derived-table recomputations (rule changes and image registrations).")
	mAffectedSources = obs.NewHistogram("graphitti_prop_delta_affected_sources",
		"Annotations re-evaluated by one incremental delta (the mutation's propagation neighborhood).",
		obs.CountBuckets)
)
