// Package prop is Graphitti's propagation engine: it materializes
// derived annotations from committed ones, driven by rules, and
// maintains them incrementally as annotations commit and delete.
//
// The paper's core observation is that annotations on one object
// implicitly annotate related objects — "if the same referent is
// connected to two different annotations … the two annotations become
// indirectly related" — and the a-graph makes that relatedness
// queryable. This package makes it *material*: a Rule names a trigger
// (which committed annotations fire it) and a propagation edge (how the
// derived targets are found), and the engine keeps the set of derived
// facts exactly consistent with the committed state. Following "On
// Anomalies in Annotation Systems" (Brust & Rothkugel), maintenance is
// anomaly-free: a mutation and its derived consequences publish as one
// core.View, so readers never observe a stale or orphaned derived fact.
// Every fact carries provenance (rule ID, source annotation, edge
// witness), per the AGTK line of work on traceable annotations.
//
// # Propagation edges
//
//   - EdgeOverlap: a triggering interval/region referent of the source
//     propagates to every referent overlapping it in the same coordinate
//     domain / system (SUB_X ifOverlap, answered by the O(1)
//     interval.Snapshot / rtree.Snapshot trees of the pinned view).
//   - EdgeCoRegistered: a region referent propagates to every other
//     image registered into the same coordinate system whose footprint
//     overlaps the region (the biodata registration maps).
//   - EdgeOntologyClosure: an ontology term reference propagates to the
//     term's ancestors under is_a/part_of (ontology.Ancestors) — marking
//     "serine protease" implicitly marks "protease" and "hydrolase".
//   - EdgeSharedReferent: one labeled a-graph hop, annotates ∘
//     annotatesᵀ — the source propagates to every annotation sharing one
//     of its referents.
//
// # Durability
//
// Rules are durable operations: the durable layer logs OpAddRule /
// OpDeleteRule and snapshots carry the rule set, while derived facts are
// never logged — they are epoch-tagged, recomputable state that recovery
// re-derives by replaying rules and commits in order.
//
// # Caveats
//
// Ontologies are consulted live: mutating a registered *ontology.Ontology
// in place (AddTerm/AddEdge after registration) does not retrigger
// propagation until the next affecting mutation or RecomputeDerived.
package prop

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"graphitti/internal/ontology"
)

// Errors reported by the propagation engine.
var (
	ErrBadRule       = errors.New("prop: invalid rule")
	ErrDuplicateRule = errors.New("prop: duplicate rule")
	ErrNoSuchRule    = errors.New("prop: no such rule")
)

// EdgeKind names a propagation edge.
type EdgeKind string

// The propagation edges.
const (
	// EdgeOverlap propagates along SUB_X overlap within a coordinate
	// domain or system, via the spatial index snapshots.
	EdgeOverlap EdgeKind = "overlap"
	// EdgeCoRegistered propagates a region referent to co-registered
	// images of its coordinate system whose footprints overlap it.
	EdgeCoRegistered EdgeKind = "coregistered"
	// EdgeOntologyClosure propagates a term reference to the term's
	// ancestors (is_a/part_of by default).
	EdgeOntologyClosure EdgeKind = "closure"
	// EdgeSharedReferent propagates to annotations sharing a referent
	// with the source (one annotates-labeled a-graph hop each way).
	EdgeSharedReferent EdgeKind = "shared-referent"
)

// Rule is one propagation rule: a trigger selecting source annotations
// (and, for spatial edges, which of their referents participate) plus a
// propagation edge producing derived targets. The zero trigger matches
// every annotation. Rules serialize as JSON — the grammar of the HTTP
// rule API, the server's -rules file, and the persist snapshot.
type Rule struct {
	// ID names the rule; it is recorded in every fact's provenance.
	ID string `json:"id"`

	// Keyword, when set, requires the source annotation's content to
	// contain the (case-insensitive) keyword token.
	Keyword string `json:"keyword,omitempty"`
	// Ontology/Term, when Term is set, require the source annotation to
	// reference exactly that term. With EdgeOntologyClosure, Ontology
	// alone restricts which term references are expanded.
	Ontology string `json:"ontology,omitempty"`
	Term     string `json:"term,omitempty"`
	// Domain, when set, restricts which referents of the source trigger
	// spatial edges (the coordinate domain for intervals, the coordinate
	// system for regions).
	Domain string `json:"domain,omitempty"`
	// Kind, when set ("interval" or "region"), restricts the triggering
	// referent kind for spatial edges.
	Kind string `json:"kind,omitempty"`

	// Edge is the propagation edge.
	Edge EdgeKind `json:"edge"`
	// Relations restricts EdgeOntologyClosure's ancestor traversal;
	// empty means is_a + part_of.
	Relations []string `json:"relations,omitempty"`
}

// DefaultClosureRelations are the relations EdgeOntologyClosure traverses
// when a rule names none.
var DefaultClosureRelations = []string{ontology.IsA, ontology.PartOf}

// Validate checks the rule for structural problems.
func (r Rule) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("%w: empty id", ErrBadRule)
	}
	switch r.Edge {
	case EdgeOverlap, EdgeCoRegistered, EdgeOntologyClosure, EdgeSharedReferent:
	default:
		return fmt.Errorf("%w: unknown edge %q", ErrBadRule, r.Edge)
	}
	switch r.Kind {
	case "", "interval", "region":
	default:
		return fmt.Errorf("%w: kind %q (want interval or region)", ErrBadRule, r.Kind)
	}
	if r.Term != "" && r.Ontology == "" {
		return fmt.Errorf("%w: term trigger %q needs an ontology", ErrBadRule, r.Term)
	}
	if len(r.Relations) > 0 && r.Edge != EdgeOntologyClosure {
		return fmt.Errorf("%w: relations only apply to the closure edge", ErrBadRule)
	}
	// Reject filters the edge would silently ignore or that make the
	// rule unable to ever fire — a 201 for a no-op rule helps nobody.
	if r.Edge == EdgeOntologyClosure && (r.Domain != "" || r.Kind != "") {
		return fmt.Errorf("%w: domain/kind filters do not apply to the closure edge", ErrBadRule)
	}
	if r.Edge == EdgeCoRegistered && r.Kind == "interval" {
		return fmt.Errorf("%w: the coregistered edge fires only on region marks", ErrBadRule)
	}
	return nil
}

// closureRelations returns the effective relation set of a closure rule.
func (r Rule) closureRelations() []string {
	if len(r.Relations) > 0 {
		return r.Relations
	}
	return DefaultClosureRelations
}

// ParseRules decodes a JSON array of rules (the -rules file format) and
// validates each.
func ParseRules(rd io.Reader) ([]Rule, error) {
	var rules []Rule
	if err := json.NewDecoder(rd).Decode(&rules); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRule, err)
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// sortRules orders rules by ID (the engine's canonical evaluation order).
func sortRules(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
}
