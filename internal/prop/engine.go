package prop

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/trace"
)

// Engine holds the rule set and implements core.Propagator: the store's
// writer calls Delta inside its critical section on every commit/delete,
// and Recompute after coarse events (rule changes, image registration).
// All methods are safe for concurrent use.
type Engine struct {
	store *core.Store

	mu    sync.RWMutex
	rules map[string]Rule
}

// Attach returns the store's propagation engine, creating and attaching
// one if the store has none. The check-and-attach is atomic; concurrent
// callers get the same instance. It panics if a non-prop Propagator is
// already attached.
func Attach(s *core.Store) *Engine {
	p := s.EnsurePropagator(func() core.Propagator {
		return &Engine{store: s, rules: make(map[string]Rule)}
	})
	e, ok := p.(*Engine)
	if !ok {
		panic("prop: store has a non-prop propagator attached")
	}
	return e
}

// RulesOf returns the rules of the store's engine without attaching one
// (nil when no engine is attached).
func RulesOf(s *core.Store) []Rule {
	if e, ok := s.Propagator().(*Engine); ok {
		return e.Rules()
	}
	return nil
}

// AddRule validates and registers a rule, then rebuilds the derived
// table so every existing annotation is evaluated under it. The rule
// swap and the rebuild happen inside the store writer's critical
// section, so no concurrent commit can publish a view whose derived
// table disagrees with the rule set; the rule is active once AddRule
// returns.
func (e *Engine) AddRule(r Rule) error {
	return e.AddRules(r)
}

// AddRules registers several rules with one derived-table rebuild —
// what snapshot load uses so N rules cost one recompute, not N.
// Validation and duplicate checks run first; any failure leaves the
// rule set and the derived table untouched.
func (e *Engine) AddRules(rules ...Rule) error {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return e.store.UpdateDerivedRules(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, r := range rules {
			if _, dup := e.rules[r.ID]; dup {
				return fmt.Errorf("%w: %s", ErrDuplicateRule, r.ID)
			}
			for _, earlier := range rules[:i] {
				if earlier.ID == r.ID {
					return fmt.Errorf("%w: %s", ErrDuplicateRule, r.ID)
				}
			}
		}
		for _, r := range rules {
			e.rules[r.ID] = r
		}
		mRules.Set(int64(len(e.rules)))
		return nil
	})
}

// DeleteRule removes a rule and every fact it derived, atomically with
// respect to concurrent commits (see AddRule).
func (e *Engine) DeleteRule(id string) error {
	return e.store.UpdateDerivedRules(func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.rules[id]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSuchRule, id)
		}
		delete(e.rules, id)
		mRules.Set(int64(len(e.rules)))
		return nil
	})
}

// Rule returns a registered rule by ID.
func (e *Engine) Rule(id string) (Rule, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.rules[id]
	return r, ok
}

// Rules returns the registered rules, sorted by ID.
func (e *Engine) Rules() []Rule {
	return e.rulesSnapshot()
}

func (e *Engine) rulesSnapshot() []Rule {
	e.mu.RLock()
	out := make([]Rule, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, r)
	}
	e.mu.RUnlock()
	sortRules(out)
	return out
}

// Delta implements core.Propagator: the incremental maintenance path.
//
// The affected-source set of a mutation is the mutated annotation plus
// its propagation neighborhood — annotations sharing one of its
// referents (shared-referent edges) and annotations owning a referent
// that overlaps one of its referents (overlap edges; found through the
// spatial index of the appropriate view). Closure and co-registration
// facts depend only on their own source, so they need no neighbors.
// Each affected source's fact set is then recomputed in full against the
// successor view — exactly what a from-scratch recompute would produce
// for it, which is how the delta path stays byte-identical to full
// recomputation.
//
// For deletions the neighborhood is taken from the pre-mutation view:
// its tree snapshots still hold the garbage-collected referents, which
// is the only way to find the surviving annotations whose facts targeted
// them.
func (e *Engine) Delta(pre, post *core.View, ann *core.Annotation, deleted bool) map[uint64][]core.DerivedFact {
	return e.delta(pre, post, ann, deleted, nil)
}

// DeltaTraced implements core.TracedPropagator: Delta with per-rule
// attribution onto sp — for every rule that evaluated, the span gains
// rule.<id>.facts (facts produced across all affected sources) and
// rule.<id>.micros (cumulative evaluation time), plus the size of the
// affected-source set. A nil sp behaves exactly like Delta.
func (e *Engine) DeltaTraced(pre, post *core.View, ann *core.Annotation,
	deleted bool, sp *trace.Span) map[uint64][]core.DerivedFact {
	return e.delta(pre, post, ann, deleted, sp)
}

func (e *Engine) delta(pre, post *core.View, ann *core.Annotation,
	deleted bool, sp *trace.Span) map[uint64][]core.DerivedFact {
	rules := e.rulesSnapshot()
	if len(rules) == 0 {
		return nil
	}
	needOverlap, needShared := false, false
	for _, r := range rules {
		switch r.Edge {
		case EdgeOverlap:
			needOverlap = true
		case EdgeSharedReferent:
			needShared = true
		}
	}

	affected := map[uint64]bool{ann.ID: true}
	base := post
	if deleted {
		base = pre
	}
	if needOverlap || needShared {
		for _, refID := range ann.ReferentIDs {
			ref, err := base.Referent(refID)
			if err != nil {
				continue
			}
			if needShared {
				for _, other := range base.AnnotationsOfReferent(refID) {
					affected[other.ID] = true
				}
			}
			if needOverlap && spatialKind(ref.Kind) {
				for _, s := range base.ReferentsOverlapping(ref.Mark()) {
					if s == nil || s.ID == refID {
						continue
					}
					for _, other := range base.AnnotationsOfReferent(s.ID) {
						affected[other.ID] = true
					}
				}
			}
		}
	}

	mDeltas.Inc()
	mAffectedSources.Observe(float64(len(affected)))
	var stats map[string]*ruleStat
	if sp != nil {
		stats = make(map[string]*ruleStat, len(rules))
	}
	out := make(map[uint64][]core.DerivedFact, len(affected))
	for src := range affected {
		if deleted && src == ann.ID {
			out[src] = nil
			continue
		}
		srcAnn, err := post.Annotation(src)
		if err != nil {
			out[src] = nil
			continue
		}
		out[src] = e.evalSourceStats(post, srcAnn, rules, stats)
	}
	if sp != nil {
		sp.SetAttrInt("sources", int64(len(affected)))
		for id, rs := range stats {
			sp.SetAttrInt("rule."+id+".facts", int64(rs.facts))
			sp.SetAttrInt("rule."+id+".micros", rs.nanos/1e3)
		}
	}
	return out
}

// ruleStat accumulates one rule's contribution to a traced delta across
// every affected source.
type ruleStat struct {
	facts int
	nanos int64
}

// Recompute implements core.Propagator: the from-scratch path the delta
// path is proven against, also used after rule changes and image
// registrations.
func (e *Engine) Recompute(v *core.View) map[uint64][]core.DerivedFact {
	rules := e.rulesSnapshot()
	if len(rules) == 0 {
		return nil
	}
	mRecomputes.Inc()
	out := make(map[uint64][]core.DerivedFact)
	for _, ann := range v.Annotations() {
		if facts := e.evalSource(v, ann, rules); len(facts) > 0 {
			out[ann.ID] = facts
		}
	}
	return out
}

// RecomputeOnRegister implements core.Propagator: object registrations
// only matter to co-registration rules.
func (e *Engine) RecomputeOnRegister() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, r := range e.rules {
		if r.Edge == EdgeCoRegistered {
			return true
		}
	}
	return false
}

func spatialKind(k core.ReferentKind) bool {
	return k == core.IntervalReferent || k == core.RegionReferent
}

// evalSource computes one source annotation's complete derived fact set
// under the given rules, in canonical order. It reads only the view, so
// evaluating the same source against the same view always produces the
// same bytes regardless of the path (delta or recompute) that asked.
func (e *Engine) evalSource(v *core.View, ann *core.Annotation, rules []Rule) []core.DerivedFact {
	return e.evalSourceStats(v, ann, rules, nil)
}

// evalSourceStats is evalSource with optional per-rule accounting: when
// stats is non-nil each rule's fact output and evaluation time are
// accumulated into it (the traced-delta path; nil costs nothing).
func (e *Engine) evalSourceStats(v *core.View, ann *core.Annotation, rules []Rule,
	stats map[string]*ruleStat) []core.DerivedFact {
	var facts []core.DerivedFact
	var keywords []string // lazily fetched once per source
	ownRefs := make(map[uint64]bool, len(ann.ReferentIDs))
	for _, id := range ann.ReferentIDs {
		ownRefs[id] = true
	}
	for _, rule := range rules {
		if rule.Keyword != "" {
			if keywords == nil {
				keywords = ann.Content.Keywords()
			}
			if !containsToken(keywords, strings.ToLower(rule.Keyword)) {
				continue
			}
		}
		if rule.Term != "" && !referencesTerm(ann, rule.Ontology, rule.Term) {
			continue
		}
		var t0 time.Time
		before := len(facts)
		if stats != nil {
			t0 = time.Now()
		}
		switch rule.Edge {
		case EdgeOverlap:
			facts = e.evalOverlap(v, ann, rule, ownRefs, facts)
		case EdgeCoRegistered:
			facts = e.evalCoRegistered(v, ann, rule, facts)
		case EdgeOntologyClosure:
			facts = e.evalClosure(v, ann, rule, facts)
		case EdgeSharedReferent:
			facts = e.evalShared(v, ann, rule, facts)
		}
		if stats != nil {
			rs := stats[rule.ID]
			if rs == nil {
				rs = &ruleStat{}
				stats[rule.ID] = rs
			}
			rs.facts += len(facts) - before
			rs.nanos += time.Since(t0).Nanoseconds()
		}
	}
	return canonicalize(facts)
}

// triggeringReferent reports whether ref participates in rule's spatial
// edge under the rule's kind/domain filters.
func triggeringReferent(ref *core.Referent, rule Rule) bool {
	if rule.Domain != "" && ref.Domain != rule.Domain {
		return false
	}
	if rule.Kind != "" && ref.Kind.String() != rule.Kind {
		return false
	}
	return true
}

func (e *Engine) evalOverlap(v *core.View, ann *core.Annotation, rule Rule,
	ownRefs map[uint64]bool, facts []core.DerivedFact) []core.DerivedFact {
	for _, refID := range ann.ReferentIDs {
		ref, err := v.Referent(refID)
		if err != nil || !spatialKind(ref.Kind) || !triggeringReferent(ref, rule) {
			continue
		}
		for _, s := range v.ReferentsOverlapping(ref.Mark()) {
			if s == nil || ownRefs[s.ID] {
				continue // its own marks are directly annotated, not derived
			}
			facts = append(facts, core.DerivedFact{
				Rule:    rule.ID,
				Source:  ann.ID,
				Target:  agraph.Referent(s.ID),
				Witness: fmt.Sprintf("overlap ref%d~ref%d", ref.ID, s.ID),
			})
		}
	}
	return facts
}

func (e *Engine) evalCoRegistered(v *core.View, ann *core.Annotation, rule Rule,
	facts []core.DerivedFact) []core.DerivedFact {
	for _, refID := range ann.ReferentIDs {
		ref, err := v.Referent(refID)
		if err != nil || ref.Kind != core.RegionReferent || !triggeringReferent(ref, rule) {
			continue
		}
		for _, imgID := range v.Images() {
			if imgID == ref.ObjectID {
				continue
			}
			im, err := v.Image(imgID)
			if err != nil || im.System != ref.Domain || !im.Footprint().Overlaps(ref.Region) {
				continue
			}
			facts = append(facts, core.DerivedFact{
				Rule:    rule.ID,
				Source:  ann.ID,
				Target:  agraph.Object(string(core.TypeImage), imgID),
				Witness: fmt.Sprintf("coreg ref%d in %s", ref.ID, ref.Domain),
			})
		}
	}
	return facts
}

func (e *Engine) evalClosure(v *core.View, ann *core.Annotation, rule Rule,
	facts []core.DerivedFact) []core.DerivedFact {
	for _, tr := range ann.Terms {
		if rule.Ontology != "" && tr.Ontology != rule.Ontology {
			continue
		}
		o, err := v.Ontology(tr.Ontology)
		if err != nil {
			continue
		}
		ancestors, err := o.Ancestors(tr.TermID, rule.closureRelations())
		if err != nil {
			continue
		}
		for _, anc := range ancestors {
			facts = append(facts, core.DerivedFact{
				Rule:    rule.ID,
				Source:  ann.ID,
				Target:  agraph.Term(tr.Ontology, anc),
				Witness: fmt.Sprintf("closure %s/%s -> %s", tr.Ontology, tr.TermID, anc),
			})
		}
	}
	return facts
}

func (e *Engine) evalShared(v *core.View, ann *core.Annotation, rule Rule,
	facts []core.DerivedFact) []core.DerivedFact {
	for _, refID := range ann.ReferentIDs {
		ref, err := v.Referent(refID)
		if err != nil || !triggeringReferent(ref, rule) {
			continue
		}
		for _, other := range v.AnnotationsOfReferent(refID) {
			if other.ID == ann.ID {
				continue
			}
			facts = append(facts, core.DerivedFact{
				Rule:    rule.ID,
				Source:  ann.ID,
				Target:  agraph.ContentRoot(other.ID),
				Witness: fmt.Sprintf("shared ref%d", refID),
			})
		}
	}
	return facts
}

// canonicalize sorts facts by (rule, target, witness) and drops exact
// duplicates (a shared referent reached through two of the source's own
// marks, say), making fact sets comparable byte-for-byte.
func canonicalize(facts []core.DerivedFact) []core.DerivedFact {
	if len(facts) == 0 {
		return nil
	}
	sort.Slice(facts, func(i, j int) bool { return factLess(facts[i], facts[j]) })
	out := facts[:1]
	for _, f := range facts[1:] {
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return out
}

func factLess(a, b core.DerivedFact) bool {
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	if a.Target.Kind != b.Target.Kind {
		return a.Target.Kind < b.Target.Kind
	}
	if a.Target.Key != b.Target.Key {
		return a.Target.Key < b.Target.Key
	}
	return a.Witness < b.Witness
}

func containsToken(tokens []string, tok string) bool {
	for _, t := range tokens {
		if t == tok {
			return true
		}
	}
	return false
}

func referencesTerm(ann *core.Annotation, ont, term string) bool {
	for _, tr := range ann.Terms {
		if tr.Ontology == ont && tr.TermID == term {
			return true
		}
	}
	return false
}
