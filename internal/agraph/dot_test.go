package agraph

import (
	"strings"
	"testing"
)

func TestSubgraphDOT(t *testing.T) {
	g, terms := connectTestGraph()
	sg, err := g.Connect(terms...)
	if err != nil {
		t.Fatal(err)
	}
	dot := sg.DOT("demo")
	for _, want := range []string{
		`digraph "demo" {`,
		"rankdir=LR",
		"shape=box",     // content nodes
		"shape=ellipse", // referent nodes
		"shape=folder",  // object node
		`fillcolor="#ffd54f"`,
		"annotates",
		"marks",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every edge references declared nodes.
	for _, e := range sg.Edges {
		if !strings.Contains(dot, e.From.String()) || !strings.Contains(dot, e.To.String()) {
			t.Errorf("edge %v endpoints missing from DOT", e)
		}
	}
	// Default name.
	if !strings.Contains(sg.DOT(""), `digraph "agraph"`) {
		t.Error("default name not applied")
	}
}

func TestPathDOT(t *testing.T) {
	g, terms := connectTestGraph()
	p, err := g.FindPath(terms[0], terms[1])
	if err != nil {
		t.Fatal(err)
	}
	dot := p.DOT("path")
	if !strings.Contains(dot, terms[0].String()) || !strings.Contains(dot, terms[1].String()) {
		t.Fatalf("path endpoints missing:\n%s", dot)
	}
	// Endpoints are highlighted as terminals.
	if strings.Count(dot, `fillcolor="#ffd54f"`) != 2 {
		t.Fatalf("expected 2 highlighted terminals:\n%s", dot)
	}
	// Term node shape.
	g2 := New()
	g2.AddEdge(ContentRoot(1), Term("go", "protease"), LabelRefersTo)
	p2, err := g2.FindPath(ContentRoot(1), Term("go", "protease"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.DOT("t"), "shape=diamond") {
		t.Error("term shape missing")
	}
}
