package agraph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// buildMessyGraph returns a graph exercising every adjacency shape:
// parallel edges (same and different labels), self-loops, isolated
// nodes, high-degree hubs, and removed edges/nodes.
func buildMessyGraph(t testing.TB, seed int64) (*Graph, []NodeRef) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	labels := []EdgeLabel{LabelAnnotates, LabelRefersTo, LabelMarks, LabelAbout}
	refs := make([]NodeRef, 24)
	for i := range refs {
		switch i % 4 {
		case 0:
			refs[i] = ContentRoot(uint64(i))
		case 1:
			refs[i] = Referent(uint64(i))
		case 2:
			refs[i] = Term("ont", string(rune('a'+i)))
		default:
			refs[i] = Object("tbl", string(rune('a'+i)))
		}
	}
	g.AddNode(refs[0]) // isolated until edges arrive
	var ids []uint64
	for i := 0; i < 160; i++ {
		a, b := rng.Intn(len(refs)), rng.Intn(len(refs))
		if i%17 == 0 {
			b = a // self-loop
		}
		ids = append(ids, g.AddEdge(refs[a], refs[b], labels[rng.Intn(len(labels))]))
	}
	// Parallel edges on a fixed pair, one per label plus a duplicate.
	for _, l := range labels {
		ids = append(ids, g.AddEdge(refs[1], refs[2], l))
	}
	ids = append(ids, g.AddEdge(refs[1], refs[2], LabelAnnotates))
	// Remove a spread of edges and one node, so order-preservation after
	// removal is exercised too.
	for i := 0; i < len(ids); i += 9 {
		if err := g.RemoveEdge(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.RemoveNode(refs[3]); err != nil {
		t.Fatal(err)
	}
	refs = append(refs[:3], refs[4:]...)
	return g, refs
}

func collectOut(g *Graph, ref NodeRef, labels ...EdgeLabel) []Edge {
	var got []Edge
	g.OutEach(ref, func(e Edge) bool { got = append(got, e); return true }, labels...)
	return got
}

func collectIn(g *Graph, ref NodeRef, labels ...EdgeLabel) []Edge {
	var got []Edge
	g.InEach(ref, func(e Edge) bool { got = append(got, e); return true }, labels...)
	return got
}

// TestIterSliceParity: InEach/OutEach (and the Seq variants) must visit
// exactly the edges In/Out return, in the same (edge-ID) order, for
// every node and label-filter shape.
func TestIterSliceParity(t *testing.T) {
	g, refs := buildMessyGraph(t, 7)
	filters := [][]EdgeLabel{
		nil,
		{LabelAnnotates},
		{LabelMarks},
		{LabelAnnotates, LabelRefersTo},
		{LabelMarks, LabelAbout, LabelAnnotates},
		{LabelAnnotates, LabelAnnotates}, // duplicate labels must not duplicate edges
		{"nonexistent"},
	}
	for _, ref := range append(refs, Referent(99999) /* absent node */) {
		for _, labels := range filters {
			wantOut := g.Out(ref, labels...)
			if gotOut := collectOut(g, ref, labels...); !sameEdges(gotOut, wantOut) {
				t.Fatalf("OutEach(%v, %v) = %v, want %v", ref, labels, gotOut, wantOut)
			}
			wantIn := g.In(ref, labels...)
			if gotIn := collectIn(g, ref, labels...); !sameEdges(gotIn, wantIn) {
				t.Fatalf("InEach(%v, %v) = %v, want %v", ref, labels, gotIn, wantIn)
			}
			var gotSeq []Edge
			for e := range g.OutSeq(ref, labels...) {
				gotSeq = append(gotSeq, e)
			}
			if !sameEdges(gotSeq, wantOut) {
				t.Fatalf("OutSeq(%v, %v) = %v, want %v", ref, labels, gotSeq, wantOut)
			}
			gotSeq = nil
			for e := range g.InSeq(ref, labels...) {
				gotSeq = append(gotSeq, e)
			}
			if !sameEdges(gotSeq, wantIn) {
				t.Fatalf("InSeq(%v, %v) = %v, want %v", ref, labels, gotSeq, wantIn)
			}
			// Counts agree with slice lengths.
			if got := g.OutCount(ref, labels...); got != len(wantOut) {
				t.Fatalf("OutCount(%v, %v) = %d, want %d", ref, labels, got, len(wantOut))
			}
			if got := g.InCount(ref, labels...); got != len(wantIn) {
				t.Fatalf("InCount(%v, %v) = %d, want %d", ref, labels, got, len(wantIn))
			}
			// NeighborsEach visits the same distinct peer set as Neighbors.
			want := g.Neighbors(ref, labels...)
			peerSet := make(map[NodeRef]int)
			g.NeighborsEach(ref, func(p NodeRef) bool { peerSet[p]++; return true }, labels...)
			if len(peerSet) != len(want) {
				t.Fatalf("NeighborsEach(%v, %v) visited %d peers, want %d", ref, labels, len(peerSet), len(want))
			}
			for _, p := range want {
				if peerSet[p] != 1 {
					t.Fatalf("NeighborsEach(%v, %v): peer %v visited %d times", ref, labels, p, peerSet[p])
				}
			}
		}
	}
}

func sameEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || reflect.DeepEqual(a, b)
}

// TestIterOrdered: visitors see strictly ascending edge IDs (the
// ID-ordered adjacency invariant that replaced per-call sorting).
func TestIterOrdered(t *testing.T) {
	g, refs := buildMessyGraph(t, 11)
	for _, ref := range refs {
		for _, labels := range [][]EdgeLabel{nil, {LabelAnnotates}, {LabelMarks, LabelRefersTo}} {
			last := uint64(0)
			g.OutEach(ref, func(e Edge) bool {
				if e.ID <= last {
					t.Fatalf("OutEach(%v): id %d after %d", ref, e.ID, last)
				}
				last = e.ID
				return true
			}, labels...)
		}
	}
}

// TestIterEarlyStop: returning false stops iteration immediately.
func TestIterEarlyStop(t *testing.T) {
	g := New()
	a, b := Referent(1), Referent(2)
	for i := 0; i < 10; i++ {
		g.AddEdge(a, b, LabelAnnotates)
	}
	n := 0
	g.OutEach(a, func(Edge) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d edges, want 3", n)
	}
	n = 0
	for range g.InSeq(b) {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("seq visited %d edges, want 2", n)
	}
}

// TestIterNestedDuringMutation: a visitor may call back into the graph —
// including mutating it — because iteration runs on a snapshot taken at
// call time, not under the lock.
func TestIterNestedDuringMutation(t *testing.T) {
	g := New()
	a, b, c := Referent(1), Referent(2), Referent(3)
	g.AddEdge(a, b, LabelAnnotates)
	g.AddEdge(a, c, LabelAnnotates)
	visited := 0
	g.OutEach(a, func(e Edge) bool {
		visited++
		// Nested read and a mutation mid-iteration.
		g.InEach(e.To, func(Edge) bool { return true })
		g.AddEdge(e.To, Referent(100+e.ID), LabelMarks)
		return true
	}, LabelAnnotates)
	if visited != 2 {
		t.Fatalf("visited %d, want 2 (snapshot must not see edges added mid-iteration)", visited)
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("EdgeCount = %d, want 4", g.EdgeCount())
	}
}

func TestHasEdgeBetween(t *testing.T) {
	g := New()
	a, b, c := ContentRoot(1), Referent(2), Referent(3)
	g.AddEdge(a, b, LabelAnnotates)
	g.AddEdge(b, c, LabelMarks)
	g.AddEdge(a, a, LabelAbout) // self-loop
	cases := []struct {
		from, to NodeRef
		labels   []EdgeLabel
		want     bool
	}{
		{a, b, nil, true},
		{a, b, []EdgeLabel{LabelAnnotates}, true},
		{a, b, []EdgeLabel{LabelMarks}, false},
		{b, a, nil, false}, // direction matters
		{b, c, []EdgeLabel{LabelMarks, LabelAnnotates}, true},
		{a, a, []EdgeLabel{LabelAbout}, true},
		{a, c, nil, false},
		{Referent(99), b, nil, false},
		{a, Referent(99), nil, false},
	}
	for _, tc := range cases {
		if got := g.HasEdgeBetween(tc.from, tc.to, tc.labels...); got != tc.want {
			t.Errorf("HasEdgeBetween(%v, %v, %v) = %v, want %v", tc.from, tc.to, tc.labels, got, tc.want)
		}
	}
}

func TestReachableEach(t *testing.T) {
	g, refs := buildMessyGraph(t, 13)
	// Oracle: undirected reachability via Neighbors.
	for _, src := range refs[:4] {
		want := map[NodeRef]bool{}
		queue := []NodeRef{src}
		want[src] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(cur) {
				if !want[nb] {
					want[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		got := map[NodeRef]bool{}
		if err := g.ReachableEach(src, func(n NodeRef) bool { got[n] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReachableEach(%v): got %d nodes, want %d", src, len(got), len(want))
		}
	}
	if err := g.ReachableEach(Referent(424242), func(NodeRef) bool { return true }); err == nil {
		t.Fatal("ReachableEach on absent node: want error")
	}
	// Early stop.
	n := 0
	if err := g.ReachableEach(refs[0], func(NodeRef) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
}

// TestRemovePreservesOrder: removals rebuild adjacency lists without
// disturbing the ID order of the survivors.
func TestRemovePreservesOrder(t *testing.T) {
	g := New()
	a, b := Referent(1), Referent(2)
	var ids []uint64
	for i := 0; i < 12; i++ {
		ids = append(ids, g.AddEdge(a, b, LabelAnnotates))
	}
	for _, i := range []int{0, 5, 11} {
		if err := g.RemoveEdge(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	out := g.Out(a, LabelAnnotates)
	if len(out) != 9 {
		t.Fatalf("len = %d, want 9", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].ID >= out[i].ID {
			t.Fatalf("order broken at %d: %v", i, out)
		}
	}
}

// TestConcurrentItersDuringAddEdge runs readers (iterators and
// traversals) against concurrent writers; meant for -race. Snapshots
// must stay internally consistent: each reader sees a prefix-closed set
// of edge IDs in ascending order.
func TestConcurrentItersDuringAddEdge(t *testing.T) {
	g := New()
	hub := Object("hub", "0")
	for i := 0; i < 50; i++ {
		g.AddEdge(Referent(uint64(i)), hub, LabelMarks)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				id := g.AddEdge(Referent(uint64(1000+w*1000+i)), hub, LabelMarks)
				if i%10 == 0 {
					if err := g.RemoveEdge(id); err != nil {
						t.Errorf("remove: %v", err)
					}
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := uint64(0)
				g.InEach(hub, func(e Edge) bool {
					if e.ID <= last {
						t.Errorf("iterator saw id %d after %d", e.ID, last)
						return false
					}
					last = e.ID
					return true
				}, LabelMarks)
				if _, err := g.FindPath(Referent(0), Referent(1)); err != nil {
					t.Errorf("path: %v", err)
					return
				}
				g.NeighborsEach(hub, func(NodeRef) bool { return true })
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
