package agraph

import (
	"fmt"
	"iter"
)

// Zero-copy traversal API.
//
// The visitor methods (InEach/OutEach/NeighborsEach) and the iter.Seq
// variants (InSeq/OutSeq/NeighborsSeq) visit edges in edge-ID order —
// the same order In/Out return — without materializing result slices.
// Each call snapshots the relevant adjacency list headers under the
// read lock and iterates after releasing it: adjacency lists are
// copy-on-write, so a snapshot observes exactly the edge set that
// existed at call time even while concurrent writers mutate the graph.
// Visitors may therefore call back into the graph (including nested
// iteration) without risking read-lock re-entrancy deadlocks.

// snapshotAdj picks the list(s) to visit for one adjacency and label
// filter. Caller holds the read lock; exactly one of the returns is
// meaningful (multi non-nil for multi-label filters).
func snapshotAdj(a *adjacency, labels []EdgeLabel, buf [][]halfRef) (single []halfRef, multi [][]halfRef) {
	switch len(labels) {
	case 0:
		return a.all, nil
	case 1:
		return a.bucket(labels[0]), nil
	default:
		multi, _ = bucketsFor(a, labels, buf)
		return nil, multi
	}
}

// visitHalf iterates a snapshot in edge-ID order until visit declines.
func visitHalf(single []halfRef, multi [][]halfRef, visit func(halfRef) bool) {
	if multi != nil {
		mergeVisit(multi, visit)
		return
	}
	for _, h := range single {
		if !visit(h) {
			return
		}
	}
}

// eachDir visits one direction of ref's adjacency, optionally filtered
// by labels, in edge-ID order. Returning false from visit stops early.
func (g *Graph) eachDir(ref NodeRef, out bool, labels []EdgeLabel, visit func(halfRef) bool) {
	var single []halfRef
	var multi [][]halfRef
	var buf [4][]halfRef
	g.mu.RLock()
	if i, ok := g.index[ref]; ok {
		a := &g.nodes[i].in
		if out {
			a = &g.nodes[i].out
		}
		single, multi = snapshotAdj(a, labels, buf[:0])
	}
	g.mu.RUnlock()
	visitHalf(single, multi, visit)
}

// OutEach calls visit for each edge leaving ref in edge-ID order,
// optionally filtered by label, until visit returns false.
func (g *Graph) OutEach(ref NodeRef, visit func(Edge) bool, labels ...EdgeLabel) {
	g.eachDir(ref, true, labels, func(h halfRef) bool { return visit(*h.edge) })
}

// InEach calls visit for each edge entering ref in edge-ID order,
// optionally filtered by label, until visit returns false.
func (g *Graph) InEach(ref NodeRef, visit func(Edge) bool, labels ...EdgeLabel) {
	g.eachDir(ref, false, labels, func(h halfRef) bool { return visit(*h.edge) })
}

// NeighborsEach calls visit once for each distinct peer reachable by one
// edge in either direction, optionally filtered by label, until visit
// returns false. Peers are visited in first-encounter order (outgoing
// edges by ID, then incoming); use Neighbors for the sorted slice. Both
// directions are snapshotted under one lock acquisition, so the visited
// set reflects a single instant.
func (g *Graph) NeighborsEach(ref NodeRef, visit func(NodeRef) bool, labels ...EdgeLabel) {
	var outSingle, inSingle []halfRef
	var outMulti, inMulti [][]halfRef
	var outBuf, inBuf [4][]halfRef
	g.mu.RLock()
	if i, ok := g.index[ref]; ok {
		outSingle, outMulti = snapshotAdj(&g.nodes[i].out, labels, outBuf[:0])
		inSingle, inMulti = snapshotAdj(&g.nodes[i].in, labels, inBuf[:0])
	}
	g.mu.RUnlock()
	var seen map[NodeRef]struct{}
	stopped := false
	emit := func(p NodeRef) bool {
		if seen == nil {
			seen = make(map[NodeRef]struct{}, 8)
		}
		if _, dup := seen[p]; dup {
			return true
		}
		seen[p] = struct{}{}
		if !visit(p) {
			stopped = true
			return false
		}
		return true
	}
	visitHalf(outSingle, outMulti, func(h halfRef) bool { return emit(h.edge.To) })
	if stopped {
		return
	}
	visitHalf(inSingle, inMulti, func(h halfRef) bool { return emit(h.edge.From) })
}

// OutSeq returns an iterator over the edges leaving ref in edge-ID
// order, optionally filtered by label: for e := range g.OutSeq(ref) {…}.
func (g *Graph) OutSeq(ref NodeRef, labels ...EdgeLabel) iter.Seq[Edge] {
	return func(yield func(Edge) bool) { g.OutEach(ref, yield, labels...) }
}

// InSeq returns an iterator over the edges entering ref in edge-ID
// order, optionally filtered by label.
func (g *Graph) InSeq(ref NodeRef, labels ...EdgeLabel) iter.Seq[Edge] {
	return func(yield func(Edge) bool) { g.InEach(ref, yield, labels...) }
}

// NeighborsSeq returns an iterator over the distinct peers of ref,
// optionally filtered by label, in first-encounter order.
func (g *Graph) NeighborsSeq(ref NodeRef, labels ...EdgeLabel) iter.Seq[NodeRef] {
	return func(yield func(NodeRef) bool) { g.NeighborsEach(ref, yield, labels...) }
}

// OutCount reports the number of edges leaving ref, optionally filtered
// by label, without materializing them. With zero or one label this is
// O(labels-per-node).
func (g *Graph) OutCount(ref NodeRef, labels ...EdgeLabel) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.index[ref]
	if !ok {
		return 0
	}
	return sizeFor(&g.nodes[i].out, labels)
}

// InCount reports the number of edges entering ref, optionally filtered
// by label, without materializing them.
func (g *Graph) InCount(ref NodeRef, labels ...EdgeLabel) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.index[ref]
	if !ok {
		return 0
	}
	return sizeFor(&g.nodes[i].in, labels)
}

func sizeFor(a *adjacency, labels []EdgeLabel) int {
	if len(labels) == 0 {
		return len(a.all)
	}
	n := 0
	for i, l := range labels {
		if !labelIn(l, labels[:i]) {
			n += len(a.bucket(l))
		}
	}
	return n
}

// HasEdgeBetween reports whether at least one edge runs from→to,
// optionally restricted to the given labels. It scans the smaller of
// from's outgoing and to's incoming partitions.
func (g *Graph) HasEdgeBetween(from, to NodeRef, labels ...EdgeLabel) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fi, ok := g.index[from]
	if !ok {
		return false
	}
	ti, ok := g.index[to]
	if !ok {
		return false
	}
	outA, inA := &g.nodes[fi].out, &g.nodes[ti].in
	if sizeFor(outA, labels) <= sizeFor(inA, labels) {
		return scanFor(outA, labels, func(e *Edge) bool { return e.To == to })
	}
	return scanFor(inA, labels, func(e *Edge) bool { return e.From == from })
}

func scanFor(a *adjacency, labels []EdgeLabel, match func(*Edge) bool) bool {
	if len(labels) == 0 {
		for _, h := range a.all {
			if match(h.edge) {
				return true
			}
		}
		return false
	}
	for i, l := range labels {
		if labelIn(l, labels[:i]) {
			continue
		}
		for _, h := range a.bucket(l) {
			if match(h.edge) {
				return true
			}
		}
	}
	return false
}

// ReachableEach calls visit for every node connected to src by some
// path, following edges in either direction, in BFS order (src first),
// until visit returns false. One call costs a single traversal of src's
// component — callers that would otherwise probe path-existence
// pairwise (FindPath per pair) should collect reachability once.
//
// Unlike the edge iterators, ReachableEach holds the graph's read lock
// for the whole traversal: visit must not call the graph's mutating
// methods, and should not call its reading methods either (a concurrent
// writer would deadlock a re-entrant read lock).
func (g *Graph) ReachableEach(src NodeRef, visit func(NodeRef) bool) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	si, ok := g.index[src]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchNode, src)
	}
	ar := g.arena()
	defer g.release(ar)
	ar.reset(len(g.nodes))
	ar.mark(si, -1, nil)
	ar.queue = append(ar.queue, si)
	if !visit(src) {
		return nil
	}
	for qi := 0; qi < len(ar.queue); qi++ {
		cur := ar.queue[qi]
		ns := &g.nodes[cur]
		for _, hs := range [2][]halfRef{ns.out.all, ns.in.all} {
			for _, h := range hs {
				if ar.seenAt(h.peer) {
					continue
				}
				ar.mark(h.peer, cur, nil)
				ar.queue = append(ar.queue, h.peer)
				if !visit(g.nodes[h.peer].ref) {
					return nil
				}
			}
		}
	}
	return nil
}
