package agraph

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNodeRefConstructors(t *testing.T) {
	tests := []struct {
		ref  NodeRef
		kind NodeKind
		key  string
	}{
		{Content(42, 7), ContentNode, "42/7"},
		{ContentRoot(42), ContentNode, "42/1"},
		{Referent(99), ReferentNode, "99"},
		{Term("nif", "NIF:0003"), TermNode, "nif/NIF:0003"},
		{Object("sequences", "NC_1"), ObjectNode, "sequences/NC_1"},
	}
	for _, tc := range tests {
		if tc.ref.Kind != tc.kind || tc.ref.Key != tc.key {
			t.Errorf("ref = %v, want %v:%v", tc.ref, tc.kind, tc.key)
		}
	}
	if Content(1, 2) == Content(1, 3) {
		t.Fatal("distinct XML nodes must produce distinct refs")
	}
}

func TestAddRemove(t *testing.T) {
	g := New()
	a, b := Referent(1), Referent(2)
	g.AddNode(a)
	if !g.HasNode(a) || g.HasNode(b) {
		t.Fatal("AddNode/HasNode wrong")
	}
	id := g.AddEdge(a, b, LabelAnnotates)
	if !g.HasNode(b) {
		t.Fatal("AddEdge should create endpoints")
	}
	if g.NodeCount() != 2 || g.EdgeCount() != 1 {
		t.Fatalf("counts = %d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatal("degree wrong")
	}
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Fatal("edge not removed")
	}
	if err := g.RemoveEdge(id); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("double remove: err = %v", err)
	}
	if err := g.RemoveNode(a); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(a); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("remove missing node: err = %v", err)
	}
}

func TestRemoveNodeDropsIncidentEdges(t *testing.T) {
	g := New()
	hub := Referent(0)
	for i := 1; i <= 5; i++ {
		g.AddEdge(hub, Referent(uint64(i)), LabelMarks)
	}
	g.AddEdge(Referent(1), Referent(2), LabelMarks)
	if err := g.RemoveNode(hub); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.Degree(Referent(1)) != 1 {
		t.Fatalf("stale adjacency on peer: degree = %d", g.Degree(Referent(1)))
	}
}

func TestMultigraphParallelEdges(t *testing.T) {
	g := New()
	a, b := ContentRoot(1), Referent(5)
	id1 := g.AddEdge(a, b, LabelAnnotates)
	id2 := g.AddEdge(a, b, LabelAnnotates)
	id3 := g.AddEdge(a, b, LabelRefersTo)
	if id1 == id2 || id2 == id3 {
		t.Fatal("edge IDs must be distinct")
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if got := len(g.Out(a, LabelAnnotates)); got != 2 {
		t.Fatalf("Out(annotates) = %d", got)
	}
	if got := len(g.Out(a)); got != 3 {
		t.Fatalf("Out() = %d", got)
	}
	if got := len(g.In(b, LabelRefersTo)); got != 1 {
		t.Fatalf("In(refersTo) = %d", got)
	}
	// Neighbors deduplicates.
	if got := g.Neighbors(a); len(got) != 1 || got[0] != b {
		t.Fatalf("Neighbors = %v", got)
	}
}

func TestFindPath(t *testing.T) {
	g := New()
	// content1 -> ref1 -> obj1 <- ref2 <- content2 (classic indirect
	// relation through a shared object).
	c1, c2 := ContentRoot(1), ContentRoot(2)
	r1, r2 := Referent(1), Referent(2)
	o := Object("sequences", "NC_1")
	g.AddEdge(c1, r1, LabelAnnotates)
	g.AddEdge(r1, o, LabelMarks)
	g.AddEdge(c2, r2, LabelAnnotates)
	g.AddEdge(r2, o, LabelMarks)

	p, err := g.FindPath(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("path length = %d, want 4", p.Len())
	}
	if p.Nodes[0] != c1 || p.Nodes[len(p.Nodes)-1] != c2 {
		t.Fatalf("path endpoints wrong: %v", p.Nodes)
	}
	if len(p.Nodes) != p.Len()+1 {
		t.Fatal("nodes/edges arity wrong")
	}
	// Self path.
	p, err = g.FindPath(c1, c1)
	if err != nil || p.Len() != 0 {
		t.Fatalf("self path = %v, %v", p, err)
	}
	// Unknown node.
	if _, err := g.FindPath(c1, Referent(999)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("unknown node: err = %v", err)
	}
	// Disconnected.
	lone := Referent(100)
	g.AddNode(lone)
	if _, err := g.FindPath(c1, lone); !errors.Is(err, ErrNoPath) {
		t.Fatalf("disconnected: err = %v", err)
	}
}

func TestFindPathDirected(t *testing.T) {
	g := New()
	a, b, c := Referent(1), Referent(2), Referent(3)
	g.AddEdge(a, b, LabelMarks)
	g.AddEdge(b, c, LabelMarks)
	p, err := g.FindPathDirected(a, c)
	if err != nil || p.Len() != 2 {
		t.Fatalf("directed a->c = %v, %v", p, err)
	}
	// Against edge direction: no directed path, but undirected path exists.
	if _, err := g.FindPathDirected(c, a); !errors.Is(err, ErrNoPath) {
		t.Fatalf("directed c->a: err = %v", err)
	}
	if _, err := g.FindPath(c, a); err != nil {
		t.Fatalf("undirected c->a: err = %v", err)
	}
}

func TestShortestPathChosen(t *testing.T) {
	g := New()
	a, b := Referent(0), Referent(99)
	// Long way: a -> 1 -> 2 -> 3 -> b
	g.AddEdge(a, Referent(1), LabelMarks)
	g.AddEdge(Referent(1), Referent(2), LabelMarks)
	g.AddEdge(Referent(2), Referent(3), LabelMarks)
	g.AddEdge(Referent(3), b, LabelMarks)
	// Short way: a -> 10 -> b
	g.AddEdge(a, Referent(10), LabelMarks)
	g.AddEdge(Referent(10), b, LabelMarks)
	p, err := g.FindPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("path length = %d, want 2 (shortest)", p.Len())
	}
}

func connectTestGraph() (*Graph, []NodeRef) {
	// Three annotation "stars" joined through shared referents:
	//   c1 - r1 - o1 - r2 - c2
	//             |
	//   c3 - r3 - o1
	g := New()
	c1, c2, c3 := ContentRoot(1), ContentRoot(2), ContentRoot(3)
	r1, r2, r3 := Referent(1), Referent(2), Referent(3)
	o1 := Object("images", "brain-1")
	g.AddEdge(c1, r1, LabelAnnotates)
	g.AddEdge(c2, r2, LabelAnnotates)
	g.AddEdge(c3, r3, LabelAnnotates)
	g.AddEdge(r1, o1, LabelMarks)
	g.AddEdge(r2, o1, LabelMarks)
	g.AddEdge(r3, o1, LabelMarks)
	return g, []NodeRef{c1, c2, c3}
}

func TestConnectStrategies(t *testing.T) {
	g, terms := connectTestGraph()
	for _, strat := range []ConnectStrategy{PairwiseBFS, ExpandingRing} {
		sg, err := g.ConnectWithStrategy(strat, terms...)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, term := range terms {
			if !sg.Contains(term) {
				t.Fatalf("%v: missing terminal %v", strat, term)
			}
		}
		if !sg.Connected() {
			t.Fatalf("%v: subgraph not connected", strat)
		}
		// The minimal connector here has 7 nodes; neither heuristic should
		// return more than the whole graph.
		if sg.NodeCount() < 7 || sg.NodeCount() > g.NodeCount() {
			t.Fatalf("%v: %d nodes", strat, sg.NodeCount())
		}
	}
}

func TestConnectErrors(t *testing.T) {
	g, terms := connectTestGraph()
	if _, err := g.Connect(terms[0]); !errors.Is(err, ErrTerminals) {
		t.Fatalf("single terminal: err = %v", err)
	}
	if _, err := g.Connect(terms[0], terms[0]); !errors.Is(err, ErrTerminals) {
		t.Fatalf("duplicate terminals: err = %v", err)
	}
	if _, err := g.Connect(terms[0], Referent(12345)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("ghost terminal: err = %v", err)
	}
	lone := Referent(777)
	g.AddNode(lone)
	for _, strat := range []ConnectStrategy{PairwiseBFS, ExpandingRing} {
		if _, err := g.ConnectWithStrategy(strat, terms[0], lone); !errors.Is(err, ErrNoPath) {
			t.Fatalf("%v disconnected: err = %v", strat, err)
		}
	}
}

func TestConnectTwoTerminalsEqualsPath(t *testing.T) {
	g, terms := connectTestGraph()
	p, err := g.FindPath(terms[0], terms[1])
	if err != nil {
		t.Fatal(err)
	}
	sg, err := g.ConnectWithStrategy(PairwiseBFS, terms[0], terms[1])
	if err != nil {
		t.Fatal(err)
	}
	if sg.EdgeCount() != p.Len() {
		t.Fatalf("connect(2 terminals) has %d edges, path has %d", sg.EdgeCount(), p.Len())
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		g.AddEdge(Referent(uint64(i)), Referent(uint64(i+1)), LabelMarks)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.AddEdge(Referent(uint64(1000+w*100+i)), Referent(uint64(i)), LabelAnnotates)
				if _, err := g.FindPath(Referent(0), Referent(100)); err != nil {
					t.Errorf("path failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestQuickPathOnRandomGraphs checks that FindPath agrees with a simple
// reachability oracle and returns genuinely minimal paths.
func TestQuickPathOnRandomGraphs(t *testing.T) {
	check := func(seed int64, n uint8, extra uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := int(n%30) + 2
		g := New()
		refs := make([]NodeRef, nodes)
		for i := range refs {
			refs[i] = Referent(uint64(i))
			g.AddNode(refs[i])
		}
		// A random spanning structure over the first half, leaving the
		// second half mostly disconnected.
		half := nodes/2 + 1
		for i := 1; i < half; i++ {
			g.AddEdge(refs[i], refs[rng.Intn(i)], LabelMarks)
		}
		for i := 0; i < int(extra%20); i++ {
			a, b := rng.Intn(half), rng.Intn(half)
			if a != b {
				g.AddEdge(refs[a], refs[b], LabelAnnotates)
			}
		}
		// Oracle distances by plain BFS over an adjacency copy.
		dist := bfsOracle(g, refs[0])
		for i := 0; i < nodes; i++ {
			p, err := g.FindPath(refs[0], refs[i])
			d, reachable := dist[refs[i]]
			if reachable != (err == nil) {
				return false
			}
			if err == nil && p.Len() != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConnectInvariants: on random connected graphs, both strategies
// must return connected subgraphs containing all terminals.
func TestQuickConnectInvariants(t *testing.T) {
	check := func(seed int64, n uint8, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := int(n%40) + 3
		g := New()
		refs := make([]NodeRef, nodes)
		for i := range refs {
			refs[i] = Referent(uint64(i))
		}
		for i := 1; i < nodes; i++ {
			g.AddEdge(refs[i], refs[rng.Intn(i)], LabelMarks)
		}
		for i := 0; i < nodes/2; i++ {
			a, b := rng.Intn(nodes), rng.Intn(nodes)
			if a != b {
				g.AddEdge(refs[a], refs[b], LabelAnnotates)
			}
		}
		terms := make([]NodeRef, 0, int(k%4)+2)
		for len(terms) < cap(terms) {
			terms = append(terms, refs[rng.Intn(nodes)])
		}
		terms = dedupRefs(terms)
		if len(terms) < 2 {
			return true
		}
		for _, strat := range []ConnectStrategy{PairwiseBFS, ExpandingRing} {
			sg, err := g.ConnectWithStrategy(strat, terms...)
			if err != nil {
				return false
			}
			for _, term := range terms {
				if !sg.Contains(term) {
					return false
				}
			}
			if !sg.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func bfsOracle(g *Graph, src NodeRef) map[NodeRef]int {
	dist := map[NodeRef]int{src: 0}
	queue := []NodeRef{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

func buildStarOfStars(nStars, size int) (*Graph, []NodeRef) {
	g := New()
	hub := Object("hub", "0")
	var terms []NodeRef
	for s := 0; s < nStars; s++ {
		c := ContentRoot(uint64(s))
		terms = append(terms, c)
		for i := 0; i < size; i++ {
			r := Referent(uint64(s*size + i))
			g.AddEdge(c, r, LabelAnnotates)
			if i == 0 {
				g.AddEdge(r, hub, LabelMarks)
			}
		}
	}
	return g, terms
}

func BenchmarkConnectStrategies(b *testing.B) {
	g, terms := buildStarOfStars(8, 500)
	for _, strat := range []ConnectStrategy{PairwiseBFS, ExpandingRing} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.ConnectWithStrategy(strat, terms...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
