// Package agraph implements Graphitti's a-graph: the directed labeled
// multigraph that connects annotation contents to annotation referents.
//
// The paper: "A collection of annotation contents and referents would
// induce a graph, where there are two types of nodes, the contents and the
// referents, and a directed edge connects a content to a referent. … We
// call this the a-graph; it is the connection structure that associates the
// substructures of all other types of data." The a-graph also "connects
// nodes of the XML annotation trees to (i) nodes of the interval trees and
// R-trees and (ii) ontology nodes. It is implemented in a directed labeled
// multigraph data structure … and serves as a general-purpose 'labeled join
// index'. The two primitive operations on the a-graph are path(node1,
// node2) … and connect(node1, node2, …)".
//
// Nodes are typed references (NodeRef) into the other Graphitti stores;
// the graph itself stores no payloads, only connectivity — exactly the
// "labeled join index" role the paper assigns it.
//
// # Storage layout
//
// Every node carries its incident edges partitioned by direction and by
// label, ordered by edge ID. Edge IDs are allocated monotonically, so
// insertion keeps the order for free and In/Out/the iterator API never
// sort or filter-scan. Each node also has a dense int32 index so the
// traversal primitives (FindPath, Connect, ReachableEach) run on
// epoch-stamped arrays from a pooled arena instead of per-call maps.
//
// Adjacency lists are copy-on-write: AddEdge appends (never touching
// occupied slots) and removals build fresh slices. A slice header
// snapshotted under the read lock therefore stays a consistent view of
// the edge set at call time even while writers mutate the graph — this
// is what lets the iterator API (iter.go) release the lock before
// visiting and makes nested iteration deadlock-free.
package agraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeKind discriminates the entity a node reference points at.
type NodeKind uint8

// Node kinds in the a-graph.
const (
	// ContentNode references a node of an annotation's XML content tree.
	ContentNode NodeKind = iota
	// ReferentNode references a marked sub-structure (an interval-tree or
	// R-tree entry, or a structural mark).
	ReferentNode
	// TermNode references an ontology term.
	TermNode
	// ObjectNode references a registered data object (a relational row).
	ObjectNode
)

func (k NodeKind) String() string {
	switch k {
	case ContentNode:
		return "content"
	case ReferentNode:
		return "referent"
	case TermNode:
		return "term"
	case ObjectNode:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NodeRef identifies a node. Key encodes the target entity; constructors
// below produce canonical keys.
type NodeRef struct {
	Kind NodeKind
	Key  string
}

func (r NodeRef) String() string { return r.Kind.String() + ":" + r.Key }

// Content references node xmlNode of annotation ann's content document.
func Content(ann uint64, xmlNode uint64) NodeRef {
	return NodeRef{ContentNode, fmt.Sprintf("%d/%d", ann, xmlNode)}
}

// ContentRoot references the root of annotation ann's content document.
func ContentRoot(ann uint64) NodeRef { return Content(ann, 1) }

// Referent references a marked sub-structure by referent ID.
func Referent(id uint64) NodeRef {
	return NodeRef{ReferentNode, fmt.Sprintf("%d", id)}
}

// Term references a term of a named ontology.
func Term(ontology, termID string) NodeRef {
	return NodeRef{TermNode, ontology + "/" + termID}
}

// Object references a data object stored as row key of a table.
func Object(table, key string) NodeRef {
	return NodeRef{ObjectNode, table + "/" + key}
}

// ContentID parses a content node ref back into its annotation and XML
// node IDs — the inverse of Content. The key format is owned here; use
// this rather than re-parsing Key.
func ContentID(ref NodeRef) (ann, node uint64, ok bool) {
	if ref.Kind != ContentNode {
		return 0, 0, false
	}
	slash := strings.IndexByte(ref.Key, '/')
	if slash < 0 {
		return 0, 0, false
	}
	if ann, ok = parseUint(ref.Key[:slash]); !ok {
		return 0, 0, false
	}
	if node, ok = parseUint(ref.Key[slash+1:]); !ok {
		return 0, 0, false
	}
	return ann, node, true
}

// ReferentID parses a referent node ref back into the referent ID —
// the inverse of Referent.
func ReferentID(ref NodeRef) (uint64, bool) {
	if ref.Kind != ReferentNode {
		return 0, false
	}
	return parseUint(ref.Key)
}

func parseUint(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}

// EdgeLabel labels a-graph edges.
type EdgeLabel string

// Standard labels used by the annotation store.
const (
	// LabelAnnotates connects an annotation content to a referent.
	LabelAnnotates EdgeLabel = "annotates"
	// LabelRefersTo connects an annotation content to an ontology term.
	LabelRefersTo EdgeLabel = "refersTo"
	// LabelMarks connects a referent to the data object it marks.
	LabelMarks EdgeLabel = "marks"
	// LabelAbout connects an annotation content to a data object directly.
	LabelAbout EdgeLabel = "about"
)

// Edge is a directed labeled edge. ID is unique within a Graph.
type Edge struct {
	ID    uint64
	From  NodeRef
	To    NodeRef
	Label EdgeLabel
}

// Errors reported by graph operations.
var (
	ErrNoSuchNode = errors.New("agraph: no such node")
	ErrNoSuchEdge = errors.New("agraph: no such edge")
	ErrNoPath     = errors.New("agraph: no path")
	ErrTerminals  = errors.New("agraph: connect needs at least two distinct terminals")
)

// halfRef is one end of an edge as stored in a node's adjacency lists:
// the edge plus the dense index of the node at the other end.
type halfRef struct {
	edge *Edge
	peer int32
}

// labelBucket is the adjacency partition for one edge label.
type labelBucket struct {
	label EdgeLabel
	refs  []halfRef
}

// adjacency holds one direction of a node's incident edges, partitioned
// by label and mirrored in a label-agnostic list. Both views are kept
// ordered by edge ID.
type adjacency struct {
	all     []halfRef
	buckets []labelBucket
}

// bucket returns the ID-ordered half edges carrying the label.
func (a *adjacency) bucket(label EdgeLabel) []halfRef {
	for i := range a.buckets {
		if a.buckets[i].label == label {
			return a.buckets[i].refs
		}
	}
	return nil
}

func (a *adjacency) add(e *Edge, peer int32) {
	h := halfRef{edge: e, peer: peer}
	a.all = append(a.all, h)
	for i := range a.buckets {
		if a.buckets[i].label == e.Label {
			a.buckets[i].refs = append(a.buckets[i].refs, h)
			return
		}
	}
	a.buckets = append(a.buckets, labelBucket{label: e.Label, refs: []halfRef{h}})
}

func (a *adjacency) remove(id uint64, label EdgeLabel) {
	a.all = withoutEdge(a.all, id)
	for i := range a.buckets {
		if a.buckets[i].label == label {
			a.buckets[i].refs = withoutEdge(a.buckets[i].refs, id)
			if len(a.buckets[i].refs) == 0 {
				a.buckets = append(a.buckets[:i], a.buckets[i+1:]...)
			}
			return
		}
	}
}

// withoutEdge returns a slice without edge id, preserving ID order. The
// result is a fresh allocation — the input backing array is never
// mutated, so snapshots taken by concurrent readers stay consistent.
func withoutEdge(hs []halfRef, id uint64) []halfRef {
	i := sort.Search(len(hs), func(k int) bool { return hs[k].edge.ID >= id })
	if i >= len(hs) || hs[i].edge.ID != id {
		return hs
	}
	if len(hs) == 1 {
		return nil
	}
	out := make([]halfRef, len(hs)-1)
	copy(out, hs[:i])
	copy(out[i:], hs[i+1:])
	return out
}

// nodeState is a node's identity plus its partitioned adjacency.
type nodeState struct {
	ref NodeRef
	out adjacency
	in  adjacency
}

// Graph is a directed labeled multigraph. All methods are safe for
// concurrent use.
type Graph struct {
	mu     sync.RWMutex
	index  map[NodeRef]int32 // ref -> dense index into nodes
	nodes  []nodeState
	free   []int32 // dense indices of removed nodes, available for reuse
	edges  map[uint64]*Edge
	nextID uint64
	arenas sync.Pool // *arena, reused across traversals
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index: make(map[NodeRef]int32),
		edges: make(map[uint64]*Edge),
	}
}

// ensureLocked returns the dense index for ref, creating the node if
// needed. Caller holds the write lock.
func (g *Graph) ensureLocked(ref NodeRef) int32 {
	if i, ok := g.index[ref]; ok {
		return i
	}
	var i int32
	if n := len(g.free); n > 0 {
		i = g.free[n-1]
		g.free = g.free[:n-1]
		g.nodes[i] = nodeState{ref: ref}
	} else {
		i = int32(len(g.nodes))
		g.nodes = append(g.nodes, nodeState{ref: ref})
	}
	g.index[ref] = i
	return i
}

// AddNode ensures the node exists (isolated nodes are allowed).
func (g *Graph) AddNode(ref NodeRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureLocked(ref)
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(ref NodeRef) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.index[ref]
	return ok
}

// AddEdge inserts a directed labeled edge, creating endpoints as needed,
// and returns the edge ID. Parallel edges (same endpoints, same or
// different labels) are permitted — the a-graph is a multigraph.
func (g *Graph) AddEdge(from, to NodeRef, label EdgeLabel) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	fi := g.ensureLocked(from)
	ti := g.ensureLocked(to)
	g.nextID++
	e := &Edge{ID: g.nextID, From: from, To: to, Label: label}
	g.edges[e.ID] = e
	g.nodes[fi].out.add(e, ti)
	g.nodes[ti].in.add(e, fi)
	return e.ID
}

// RemoveEdge deletes the edge with the given ID.
func (g *Graph) RemoveEdge(id uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchEdge, id)
	}
	delete(g.edges, id)
	g.nodes[g.index[e.From]].out.remove(id, e.Label)
	g.nodes[g.index[e.To]].in.remove(id, e.Label)
	return nil
}

// RemoveNode deletes a node and all incident edges.
func (g *Graph) RemoveNode(ref NodeRef) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	i, ok := g.index[ref]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchNode, ref)
	}
	ns := &g.nodes[i]
	for _, h := range ns.out.all {
		delete(g.edges, h.edge.ID)
		if h.peer != i {
			g.nodes[h.peer].in.remove(h.edge.ID, h.edge.Label)
		}
	}
	for _, h := range ns.in.all {
		delete(g.edges, h.edge.ID)
		if h.peer != i {
			g.nodes[h.peer].out.remove(h.edge.ID, h.edge.Label)
		}
	}
	g.nodes[i] = nodeState{}
	delete(g.index, ref)
	g.free = append(g.free, i)
	return nil
}

// NodeCount reports the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.index)
}

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Degree reports the number of incident edges (in plus out).
func (g *Graph) Degree(ref NodeRef) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.index[ref]
	if !ok {
		return 0
	}
	return len(g.nodes[i].out.all) + len(g.nodes[i].in.all)
}

// Out returns the edges leaving ref in edge-ID order, optionally
// filtered by label. Prefer OutEach/OutSeq on hot paths — they visit the
// same edges without materializing a slice.
func (g *Graph) Out(ref NodeRef, labels ...EdgeLabel) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.index[ref]
	if !ok {
		return nil
	}
	return materialize(&g.nodes[i].out, labels)
}

// In returns the edges entering ref in edge-ID order, optionally
// filtered by label. Prefer InEach/InSeq on hot paths.
func (g *Graph) In(ref NodeRef, labels ...EdgeLabel) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i, ok := g.index[ref]
	if !ok {
		return nil
	}
	return materialize(&g.nodes[i].in, labels)
}

// materialize copies the selected partition into an []Edge. The
// partitions are already ID-ordered, so no sorting happens; a
// multi-label filter is an ID-ordered merge of the label buckets.
func materialize(a *adjacency, labels []EdgeLabel) []Edge {
	switch len(labels) {
	case 0:
		return edgesOf(a.all)
	case 1:
		return edgesOf(a.bucket(labels[0]))
	default:
		return mergeBuckets(a, labels)
	}
}

func edgesOf(hs []halfRef) []Edge {
	if len(hs) == 0 {
		return nil
	}
	out := make([]Edge, len(hs))
	for i, h := range hs {
		out[i] = *h.edge
	}
	return out
}

func mergeBuckets(a *adjacency, labels []EdgeLabel) []Edge {
	var buf [4][]halfRef
	lists, total := bucketsFor(a, labels, buf[:0])
	if total == 0 {
		return nil
	}
	out := make([]Edge, 0, total)
	mergeVisit(lists, func(h halfRef) bool {
		out = append(out, *h.edge)
		return true
	})
	return out
}

// bucketsFor appends the buckets matching the (deduplicated) label set
// to dst and returns them with their total length.
func bucketsFor(a *adjacency, labels []EdgeLabel, dst [][]halfRef) ([][]halfRef, int) {
	total := 0
	for i, l := range labels {
		if labelIn(l, labels[:i]) {
			continue
		}
		if b := a.bucket(l); len(b) > 0 {
			dst = append(dst, b)
			total += len(b)
		}
	}
	return dst, total
}

// mergeVisit walks ID-ordered lists in globally ascending edge-ID order.
func mergeVisit(lists [][]halfRef, visit func(halfRef) bool) {
	for len(lists) > 0 {
		min := 0
		for i := 1; i < len(lists); i++ {
			if lists[i][0].edge.ID < lists[min][0].edge.ID {
				min = i
			}
		}
		if !visit(lists[min][0]) {
			return
		}
		if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
			lists = append(lists[:min], lists[min+1:]...)
		}
	}
}

func labelIn(l EdgeLabel, ls []EdgeLabel) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Neighbors returns the distinct peers reachable by one edge in either
// direction, optionally filtered by label, sorted by node key.
func (g *Graph) Neighbors(ref NodeRef, labels ...EdgeLabel) []NodeRef {
	var out []NodeRef
	g.NeighborsEach(ref, func(p NodeRef) bool {
		out = append(out, p)
		return true
	}, labels...)
	sortRefs(out)
	return out
}

// Nodes returns all node refs, sorted (kind, key). Intended for tests and
// diagnostics; O(n log n).
func (g *Graph) Nodes() []NodeRef {
	g.mu.RLock()
	out := make([]NodeRef, 0, len(g.index))
	for ref := range g.index {
		out = append(out, ref)
	}
	g.mu.RUnlock()
	sortRefs(out)
	return out
}

func sortRefs(refs []NodeRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Kind != refs[j].Kind {
			return refs[i].Kind < refs[j].Kind
		}
		return refs[i].Key < refs[j].Key
	})
}

// Path is a walk through the graph: Nodes has one more element than Edges
// and Edges[i] connects Nodes[i] to Nodes[i+1] (in either direction — the
// paper's path primitive concerns connectivity; each Edge retains its
// stored orientation).
type Path struct {
	Nodes []NodeRef
	Edges []Edge
}

// Len returns the number of edges in the path.
func (p *Path) Len() int { return len(p.Edges) }

// FindPath returns a shortest path between two nodes, traversing edges in
// either direction (the paper's path(node1, node2) primitive).
func (g *Graph) FindPath(a, b NodeRef) (*Path, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ai, ok := g.index[a]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, a)
	}
	bi, ok := g.index[b]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, b)
	}
	if ai == bi {
		return &Path{Nodes: []NodeRef{a}}, nil
	}
	ar := g.arena()
	defer g.release(ar)
	if !g.bfsLocked(ar, ai, bi, false) {
		return nil, fmt.Errorf("%w: %v to %v", ErrNoPath, a, b)
	}
	return g.buildPathLocked(ar, ai, bi), nil
}

// FindPathDirected returns a shortest path from a to b following edge
// direction only.
func (g *Graph) FindPathDirected(a, b NodeRef) (*Path, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ai, ok := g.index[a]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, a)
	}
	bi, ok := g.index[b]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, b)
	}
	if ai == bi {
		return &Path{Nodes: []NodeRef{a}}, nil
	}
	ar := g.arena()
	defer g.release(ar)
	if !g.bfsLocked(ar, ai, bi, true) {
		return nil, fmt.Errorf("%w: %v to %v (directed)", ErrNoPath, a, b)
	}
	return g.buildPathLocked(ar, ai, bi), nil
}

// bfsLocked runs a breadth-first search from src, stopping early when dst
// is reached. Caller holds at least the read lock. When directed is true
// only forward edges are followed.
func (g *Graph) bfsLocked(ar *arena, src, dst int32, directed bool) bool {
	ar.reset(len(g.nodes))
	ar.mark(src, -1, nil)
	ar.queue = append(ar.queue[:0], src)
	for qi := 0; qi < len(ar.queue); qi++ {
		cur := ar.queue[qi]
		ns := &g.nodes[cur]
		for dir, hs := range [2][]halfRef{ns.out.all, ns.in.all} {
			if dir == 1 && directed {
				break
			}
			for _, h := range hs {
				if ar.seenAt(h.peer) {
					continue
				}
				ar.mark(h.peer, cur, h.edge)
				if h.peer == dst {
					return true
				}
				ar.queue = append(ar.queue, h.peer)
			}
		}
	}
	return false
}

// buildPathLocked reconstructs the path src→dst from the arena's parent
// links. Caller holds at least the read lock.
func (g *Graph) buildPathLocked(ar *arena, src, dst int32) *Path {
	n := 0
	for cur := dst; cur != src; cur = ar.parent[cur].prev {
		n++
	}
	p := &Path{Nodes: make([]NodeRef, n+1), Edges: make([]Edge, n)}
	cur := dst
	for i := n; i > 0; i-- {
		link := ar.parent[cur]
		p.Nodes[i] = g.nodes[cur].ref
		p.Edges[i-1] = *link.via
		cur = link.prev
	}
	p.Nodes[0] = g.nodes[src].ref
	return p
}
