// Package agraph implements Graphitti's a-graph: the directed labeled
// multigraph that connects annotation contents to annotation referents.
//
// The paper: "A collection of annotation contents and referents would
// induce a graph, where there are two types of nodes, the contents and the
// referents, and a directed edge connects a content to a referent. … We
// call this the a-graph; it is the connection structure that associates the
// substructures of all other types of data." The a-graph also "connects
// nodes of the XML annotation trees to (i) nodes of the interval trees and
// R-trees and (ii) ontology nodes. It is implemented in a directed labeled
// multigraph data structure … and serves as a general-purpose 'labeled join
// index'. The two primitive operations on the a-graph are path(node1,
// node2) … and connect(node1, node2, …)".
//
// Nodes are typed references (NodeRef) into the other Graphitti stores;
// the graph itself stores no payloads, only connectivity — exactly the
// "labeled join index" role the paper assigns it.
package agraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeKind discriminates the entity a node reference points at.
type NodeKind uint8

// Node kinds in the a-graph.
const (
	// ContentNode references a node of an annotation's XML content tree.
	ContentNode NodeKind = iota
	// ReferentNode references a marked sub-structure (an interval-tree or
	// R-tree entry, or a structural mark).
	ReferentNode
	// TermNode references an ontology term.
	TermNode
	// ObjectNode references a registered data object (a relational row).
	ObjectNode
)

func (k NodeKind) String() string {
	switch k {
	case ContentNode:
		return "content"
	case ReferentNode:
		return "referent"
	case TermNode:
		return "term"
	case ObjectNode:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NodeRef identifies a node. Key encodes the target entity; constructors
// below produce canonical keys.
type NodeRef struct {
	Kind NodeKind
	Key  string
}

func (r NodeRef) String() string { return r.Kind.String() + ":" + r.Key }

// Content references node xmlNode of annotation ann's content document.
func Content(ann uint64, xmlNode uint64) NodeRef {
	return NodeRef{ContentNode, fmt.Sprintf("%d/%d", ann, xmlNode)}
}

// ContentRoot references the root of annotation ann's content document.
func ContentRoot(ann uint64) NodeRef { return Content(ann, 1) }

// Referent references a marked sub-structure by referent ID.
func Referent(id uint64) NodeRef {
	return NodeRef{ReferentNode, fmt.Sprintf("%d", id)}
}

// Term references a term of a named ontology.
func Term(ontology, termID string) NodeRef {
	return NodeRef{TermNode, ontology + "/" + termID}
}

// Object references a data object stored as row key of a table.
func Object(table, key string) NodeRef {
	return NodeRef{ObjectNode, table + "/" + key}
}

// EdgeLabel labels a-graph edges.
type EdgeLabel string

// Standard labels used by the annotation store.
const (
	// LabelAnnotates connects an annotation content to a referent.
	LabelAnnotates EdgeLabel = "annotates"
	// LabelRefersTo connects an annotation content to an ontology term.
	LabelRefersTo EdgeLabel = "refersTo"
	// LabelMarks connects a referent to the data object it marks.
	LabelMarks EdgeLabel = "marks"
	// LabelAbout connects an annotation content to a data object directly.
	LabelAbout EdgeLabel = "about"
)

// Edge is a directed labeled edge. ID is unique within a Graph.
type Edge struct {
	ID    uint64
	From  NodeRef
	To    NodeRef
	Label EdgeLabel
}

// Errors reported by graph operations.
var (
	ErrNoSuchNode = errors.New("agraph: no such node")
	ErrNoSuchEdge = errors.New("agraph: no such edge")
	ErrNoPath     = errors.New("agraph: no path")
	ErrTerminals  = errors.New("agraph: connect needs at least two distinct terminals")
)

type halfEdge struct {
	peer    NodeRef
	edge    *Edge
	forward bool // true when edge.From is the owner of this adjacency list
}

// Graph is a directed labeled multigraph. All methods are safe for
// concurrent use.
type Graph struct {
	mu     sync.RWMutex
	adj    map[NodeRef][]halfEdge
	edges  map[uint64]*Edge
	nextID uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[NodeRef][]halfEdge),
		edges: make(map[uint64]*Edge),
	}
}

// AddNode ensures the node exists (isolated nodes are allowed).
func (g *Graph) AddNode(ref NodeRef) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.adj[ref]; !ok {
		g.adj[ref] = nil
	}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(ref NodeRef) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.adj[ref]
	return ok
}

// AddEdge inserts a directed labeled edge, creating endpoints as needed,
// and returns the edge ID. Parallel edges (same endpoints, same or
// different labels) are permitted — the a-graph is a multigraph.
func (g *Graph) AddEdge(from, to NodeRef, label EdgeLabel) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	e := &Edge{ID: g.nextID, From: from, To: to, Label: label}
	g.edges[e.ID] = e
	g.adj[from] = append(g.adj[from], halfEdge{peer: to, edge: e, forward: true})
	g.adj[to] = append(g.adj[to], halfEdge{peer: from, edge: e, forward: false})
	return e.ID
}

// RemoveEdge deletes the edge with the given ID.
func (g *Graph) RemoveEdge(id uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchEdge, id)
	}
	delete(g.edges, id)
	g.adj[e.From] = dropEdge(g.adj[e.From], id)
	g.adj[e.To] = dropEdge(g.adj[e.To], id)
	return nil
}

func dropEdge(hs []halfEdge, id uint64) []halfEdge {
	for i, h := range hs {
		if h.edge.ID == id {
			hs[i] = hs[len(hs)-1]
			return hs[:len(hs)-1]
		}
	}
	return hs
}

// RemoveNode deletes a node and all incident edges.
func (g *Graph) RemoveNode(ref NodeRef) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	hs, ok := g.adj[ref]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchNode, ref)
	}
	for _, h := range hs {
		delete(g.edges, h.edge.ID)
		if h.peer != ref {
			g.adj[h.peer] = dropEdge(g.adj[h.peer], h.edge.ID)
		}
	}
	delete(g.adj, ref)
	return nil
}

// NodeCount reports the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj)
}

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Degree reports the number of incident edges (in plus out).
func (g *Graph) Degree(ref NodeRef) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[ref])
}

// Out returns the edges leaving ref, optionally filtered by label.
func (g *Graph) Out(ref NodeRef, labels ...EdgeLabel) []Edge {
	return g.incident(ref, true, labels)
}

// In returns the edges entering ref, optionally filtered by label.
func (g *Graph) In(ref NodeRef, labels ...EdgeLabel) []Edge {
	return g.incident(ref, false, labels)
}

func (g *Graph) incident(ref NodeRef, forward bool, labels []EdgeLabel) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, h := range g.adj[ref] {
		if h.forward != forward {
			continue
		}
		if len(labels) > 0 && !labelIn(h.edge.Label, labels) {
			continue
		}
		out = append(out, *h.edge)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func labelIn(l EdgeLabel, ls []EdgeLabel) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Neighbors returns the distinct peers reachable by one edge in either
// direction, optionally filtered by label, sorted by node key.
func (g *Graph) Neighbors(ref NodeRef, labels ...EdgeLabel) []NodeRef {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[NodeRef]bool)
	var out []NodeRef
	for _, h := range g.adj[ref] {
		if len(labels) > 0 && !labelIn(h.edge.Label, labels) {
			continue
		}
		if !seen[h.peer] {
			seen[h.peer] = true
			out = append(out, h.peer)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Nodes returns all node refs, sorted (kind, key). Intended for tests and
// diagnostics; O(n log n).
func (g *Graph) Nodes() []NodeRef {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]NodeRef, 0, len(g.adj))
	for ref := range g.adj {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Path is a walk through the graph: Nodes has one more element than Edges
// and Edges[i] connects Nodes[i] to Nodes[i+1] (in either direction — the
// paper's path primitive concerns connectivity; each Edge retains its
// stored orientation).
type Path struct {
	Nodes []NodeRef
	Edges []Edge
}

// Len returns the number of edges in the path.
func (p *Path) Len() int { return len(p.Edges) }

// FindPath returns a shortest path between two nodes, traversing edges in
// either direction (the paper's path(node1, node2) primitive).
func (g *Graph) FindPath(a, b NodeRef) (*Path, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.adj[a]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, a)
	}
	if _, ok := g.adj[b]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, b)
	}
	if a == b {
		return &Path{Nodes: []NodeRef{a}}, nil
	}
	parent, found := g.bfsLocked(a, b)
	if !found {
		return nil, fmt.Errorf("%w: %v to %v", ErrNoPath, a, b)
	}
	return buildPath(parent, a, b), nil
}

type parentLink struct {
	prev NodeRef
	via  *Edge
}

// bfsLocked runs a breadth-first search from src, stopping early when dst
// is reached. It returns the parent map and whether dst was found.
func (g *Graph) bfsLocked(src, dst NodeRef) (map[NodeRef]parentLink, bool) {
	parent := map[NodeRef]parentLink{src: {}}
	queue := []NodeRef{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[cur] {
			if _, seen := parent[h.peer]; seen {
				continue
			}
			parent[h.peer] = parentLink{prev: cur, via: h.edge}
			if h.peer == dst {
				return parent, true
			}
			queue = append(queue, h.peer)
		}
	}
	return parent, false
}

func buildPath(parent map[NodeRef]parentLink, src, dst NodeRef) *Path {
	var revNodes []NodeRef
	var revEdges []Edge
	cur := dst
	for cur != src {
		link := parent[cur]
		revNodes = append(revNodes, cur)
		revEdges = append(revEdges, *link.via)
		cur = link.prev
	}
	p := &Path{Nodes: make([]NodeRef, 0, len(revNodes)+1), Edges: make([]Edge, 0, len(revEdges))}
	p.Nodes = append(p.Nodes, src)
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revEdges) - 1; i >= 0; i-- {
		p.Edges = append(p.Edges, revEdges[i])
	}
	return p
}

// FindPathDirected returns a shortest path from a to b following edge
// direction only.
func (g *Graph) FindPathDirected(a, b NodeRef) (*Path, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.adj[a]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, a)
	}
	if _, ok := g.adj[b]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, b)
	}
	if a == b {
		return &Path{Nodes: []NodeRef{a}}, nil
	}
	parent := map[NodeRef]parentLink{a: {}}
	queue := []NodeRef{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[cur] {
			if !h.forward {
				continue
			}
			if _, seen := parent[h.peer]; seen {
				continue
			}
			parent[h.peer] = parentLink{prev: cur, via: h.edge}
			if h.peer == b {
				return buildPath(parent, a, b), nil
			}
			queue = append(queue, h.peer)
		}
	}
	return nil, fmt.Errorf("%w: %v to %v (directed)", ErrNoPath, a, b)
}
