package agraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the subgraph in Graphviz DOT format, with node shapes per
// kind (contents as boxes, referents as ellipses, terms as diamonds,
// objects as folders) and terminals highlighted. The output is what the
// paper's query tab renders visually as "an annotation graph".
func (s *Subgraph) DOT(name string) string {
	var sb strings.Builder
	if name == "" {
		name = "agraph"
	}
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=LR;\n")
	terminals := make(map[NodeRef]bool, len(s.Terminals))
	for _, t := range s.Terminals {
		terminals[t] = true
	}
	nodes := append([]NodeRef(nil), s.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Kind != nodes[j].Kind {
			return nodes[i].Kind < nodes[j].Kind
		}
		return nodes[i].Key < nodes[j].Key
	})
	for _, n := range nodes {
		attrs := []string{fmt.Sprintf("label=%q", n.String()), "shape=" + dotShape(n.Kind)}
		if terminals[n] {
			attrs = append(attrs, "style=filled", `fillcolor="#ffd54f"`)
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", n.String(), strings.Join(attrs, ", "))
	}
	edges := append([]Edge(nil), s.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	for _, e := range edges {
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n",
			e.From.String(), e.To.String(), string(e.Label))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DOT renders the path as a DOT digraph.
func (p *Path) DOT(name string) string {
	s := &Subgraph{Nodes: p.Nodes, Edges: p.Edges}
	if len(p.Nodes) > 0 {
		s.Terminals = []NodeRef{p.Nodes[0], p.Nodes[len(p.Nodes)-1]}
	}
	return s.DOT(name)
}

func dotShape(k NodeKind) string {
	switch k {
	case ContentNode:
		return "box"
	case ReferentNode:
		return "ellipse"
	case TermNode:
		return "diamond"
	case ObjectNode:
		return "folder"
	default:
		return "plaintext"
	}
}
