package agraph

import (
	"fmt"
	"sort"
)

// Subgraph is the result of the connect primitive: a connected piece of the
// a-graph that contains every terminal. The paper calls this "a connection
// subgraph intervening the given nodes"; query results "collate partial
// results … into a set of type-extended connection subgraphs".
type Subgraph struct {
	Terminals []NodeRef
	Nodes     []NodeRef
	Edges     []Edge
}

// NodeCount returns the number of nodes in the subgraph.
func (s *Subgraph) NodeCount() int { return len(s.Nodes) }

// EdgeCount returns the number of edges in the subgraph.
func (s *Subgraph) EdgeCount() int { return len(s.Edges) }

// Contains reports whether the subgraph includes the node.
func (s *Subgraph) Contains(ref NodeRef) bool {
	for _, n := range s.Nodes {
		if n == ref {
			return true
		}
	}
	return false
}

// Connected reports whether the subgraph's nodes form one connected
// component under its own edges (ignoring direction).
func (s *Subgraph) Connected() bool {
	if len(s.Nodes) <= 1 {
		return true
	}
	adj := make(map[NodeRef][]NodeRef, len(s.Nodes))
	for _, e := range s.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[NodeRef]bool{s.Nodes[0]: true}
	queue := []NodeRef{s.Nodes[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, n := range s.Nodes {
		if !seen[n] {
			return false
		}
	}
	return true
}

// ConnectStrategy selects the connection-subgraph search algorithm.
type ConnectStrategy uint8

// Strategies compared by ablation A4.
const (
	// PairwiseBFS unions shortest paths from the first terminal to each
	// other terminal (k−1 full BFS runs).
	PairwiseBFS ConnectStrategy = iota
	// ExpandingRing grows frontiers from all terminals simultaneously and
	// joins components where the frontiers meet; it touches far fewer
	// nodes on large graphs.
	ExpandingRing
)

func (s ConnectStrategy) String() string {
	if s == ExpandingRing {
		return "expanding-ring"
	}
	return "pairwise-bfs"
}

// Connect returns a connection subgraph containing all terminals, using
// the ExpandingRing strategy (the paper's connect(node1, node2, …)).
func (g *Graph) Connect(terminals ...NodeRef) (*Subgraph, error) {
	return g.ConnectWithStrategy(ExpandingRing, terminals...)
}

// ConnectWithStrategy is Connect with an explicit algorithm choice.
func (g *Graph) ConnectWithStrategy(strategy ConnectStrategy, terminals ...NodeRef) (*Subgraph, error) {
	distinct := dedupRefs(terminals)
	if len(distinct) < 2 {
		return nil, ErrTerminals
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	idxs := make([]int32, len(distinct))
	for i, t := range distinct {
		ti, ok := g.index[t]
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, t)
		}
		idxs[i] = ti
	}
	switch strategy {
	case PairwiseBFS:
		return g.connectPairwiseLocked(distinct, idxs)
	default:
		return g.connectExpandingLocked(distinct, idxs)
	}
}

func dedupRefs(refs []NodeRef) []NodeRef {
	seen := make(map[NodeRef]bool, len(refs))
	var out []NodeRef
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func (g *Graph) connectPairwiseLocked(terminals []NodeRef, idxs []int32) (*Subgraph, error) {
	nodes := make(map[NodeRef]bool)
	edges := make(map[uint64]Edge)
	nodes[terminals[0]] = true
	ar := g.arena()
	defer g.release(ar)
	for k, dst := range idxs[1:] {
		if !g.bfsLocked(ar, idxs[0], dst, false) {
			return nil, fmt.Errorf("%w: %v to %v", ErrNoPath, terminals[0], terminals[k+1])
		}
		p := g.buildPathLocked(ar, idxs[0], dst)
		for _, n := range p.Nodes {
			nodes[n] = true
		}
		for _, e := range p.Edges {
			edges[e.ID] = e
		}
	}
	return assembleSubgraph(terminals, nodes, edges), nil
}

// connectExpandingLocked grows BFS frontiers from every terminal at once.
// Each node is claimed by the first frontier to reach it; when an edge
// joins two different components, the joining paths are added to the result
// and the components merge. The search stops when all terminals share one
// component. All per-node state lives in the pooled arena.
func (g *Graph) connectExpandingLocked(terminals []NodeRef, idxs []int32) (*Subgraph, error) {
	// Union-find over terminal indices.
	comp := make([]int32, len(terminals))
	for i := range comp {
		comp[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		if comp[x] != x {
			comp[x] = find(comp[x])
		}
		return comp[x]
	}
	components := len(terminals)

	ar := g.arena()
	defer g.release(ar)
	ar.reset(len(g.nodes))

	nodes := make(map[NodeRef]bool, len(terminals))
	edges := make(map[uint64]Edge)
	for i, t := range idxs {
		ar.mark(t, -1, nil)
		ar.comp[t] = int32(i)
		ar.queue = append(ar.queue, t)
		nodes[terminals[i]] = true
	}

	// addChain walks the parent links from n back to its terminal, adding
	// the traversed nodes and edges to the result.
	addChain := func(n int32) {
		for cur := n; ; {
			nodes[g.nodes[cur].ref] = true
			link := ar.parent[cur]
			if link.via == nil {
				return
			}
			edges[link.via.ID] = *link.via
			cur = link.prev
		}
	}

	for qi := 0; qi < len(ar.queue) && components > 1; qi++ {
		cur := ar.queue[qi]
		curComp := ar.comp[cur]
		ns := &g.nodes[cur]
		for _, hs := range [2][]halfRef{ns.out.all, ns.in.all} {
			for _, h := range hs {
				if ar.seenAt(h.peer) {
					a, b := find(ar.comp[h.peer]), find(curComp)
					if a != b {
						// Frontiers meet: join the two components through
						// cur -(h.edge)- peer.
						addChain(cur)
						addChain(h.peer)
						edges[h.edge.ID] = *h.edge
						comp[a] = b
						components--
						if components == 1 {
							break
						}
					}
					continue
				}
				ar.mark(h.peer, cur, h.edge)
				ar.comp[h.peer] = curComp
				ar.queue = append(ar.queue, h.peer)
			}
			if components == 1 {
				break
			}
		}
	}
	if components > 1 {
		return nil, fmt.Errorf("%w: terminals are not all connected", ErrNoPath)
	}
	return assembleSubgraph(terminals, nodes, edges), nil
}

func assembleSubgraph(terminals []NodeRef, nodes map[NodeRef]bool, edges map[uint64]Edge) *Subgraph {
	s := &Subgraph{Terminals: append([]NodeRef(nil), terminals...)}
	for n := range nodes {
		s.Nodes = append(s.Nodes, n)
	}
	sortRefs(s.Nodes)
	for _, e := range edges {
		s.Edges = append(s.Edges, e)
	}
	sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i].ID < s.Edges[j].ID })
	return s
}
