package agraph

import (
	"fmt"
	"sort"
)

// Subgraph is the result of the connect primitive: a connected piece of the
// a-graph that contains every terminal. The paper calls this "a connection
// subgraph intervening the given nodes"; query results "collate partial
// results … into a set of type-extended connection subgraphs".
type Subgraph struct {
	Terminals []NodeRef
	Nodes     []NodeRef
	Edges     []Edge
}

// NodeCount returns the number of nodes in the subgraph.
func (s *Subgraph) NodeCount() int { return len(s.Nodes) }

// EdgeCount returns the number of edges in the subgraph.
func (s *Subgraph) EdgeCount() int { return len(s.Edges) }

// Contains reports whether the subgraph includes the node.
func (s *Subgraph) Contains(ref NodeRef) bool {
	for _, n := range s.Nodes {
		if n == ref {
			return true
		}
	}
	return false
}

// Connected reports whether the subgraph's nodes form one connected
// component under its own edges (ignoring direction).
func (s *Subgraph) Connected() bool {
	if len(s.Nodes) <= 1 {
		return true
	}
	adj := make(map[NodeRef][]NodeRef, len(s.Nodes))
	for _, e := range s.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[NodeRef]bool{s.Nodes[0]: true}
	queue := []NodeRef{s.Nodes[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, n := range s.Nodes {
		if !seen[n] {
			return false
		}
	}
	return true
}

// ConnectStrategy selects the connection-subgraph search algorithm.
type ConnectStrategy uint8

// Strategies compared by ablation A4.
const (
	// PairwiseBFS unions shortest paths from the first terminal to each
	// other terminal (k−1 full BFS runs).
	PairwiseBFS ConnectStrategy = iota
	// ExpandingRing grows frontiers from all terminals simultaneously and
	// joins components where the frontiers meet; it touches far fewer
	// nodes on large graphs.
	ExpandingRing
)

func (s ConnectStrategy) String() string {
	if s == ExpandingRing {
		return "expanding-ring"
	}
	return "pairwise-bfs"
}

// Connect returns a connection subgraph containing all terminals, using
// the ExpandingRing strategy (the paper's connect(node1, node2, …)).
func (g *Graph) Connect(terminals ...NodeRef) (*Subgraph, error) {
	return g.ConnectWithStrategy(ExpandingRing, terminals...)
}

// ConnectWithStrategy is Connect with an explicit algorithm choice.
func (g *Graph) ConnectWithStrategy(strategy ConnectStrategy, terminals ...NodeRef) (*Subgraph, error) {
	distinct := dedupRefs(terminals)
	if len(distinct) < 2 {
		return nil, ErrTerminals
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, t := range distinct {
		if _, ok := g.adj[t]; !ok {
			return nil, fmt.Errorf("%w: %v", ErrNoSuchNode, t)
		}
	}
	switch strategy {
	case PairwiseBFS:
		return g.connectPairwiseLocked(distinct)
	default:
		return g.connectExpandingLocked(distinct)
	}
}

func dedupRefs(refs []NodeRef) []NodeRef {
	seen := make(map[NodeRef]bool, len(refs))
	var out []NodeRef
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func (g *Graph) connectPairwiseLocked(terminals []NodeRef) (*Subgraph, error) {
	nodes := make(map[NodeRef]bool)
	edges := make(map[uint64]Edge)
	src := terminals[0]
	nodes[src] = true
	for _, dst := range terminals[1:] {
		parent, found := g.bfsLocked(src, dst)
		if !found {
			return nil, fmt.Errorf("%w: %v to %v", ErrNoPath, src, dst)
		}
		p := buildPath(parent, src, dst)
		for _, n := range p.Nodes {
			nodes[n] = true
		}
		for _, e := range p.Edges {
			edges[e.ID] = e
		}
	}
	return assembleSubgraph(terminals, nodes, edges), nil
}

// connectExpandingLocked grows BFS frontiers from every terminal at once.
// Each node is claimed by the first frontier to reach it; when an edge
// joins two different components, the joining paths are added to the result
// and the components merge. The search stops when all terminals share one
// component.
func (g *Graph) connectExpandingLocked(terminals []NodeRef) (*Subgraph, error) {
	// Union-find over terminal indices.
	comp := make([]int, len(terminals))
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if comp[x] != x {
			comp[x] = find(comp[x])
		}
		return comp[x]
	}
	union := func(a, b int) { comp[find(a)] = find(b) }
	components := len(terminals)

	owner := make(map[NodeRef]int, len(terminals)*4)
	parent := make(map[NodeRef]parentLink, len(terminals)*4)
	queue := make([]NodeRef, 0, len(terminals)*4)
	for i, t := range terminals {
		owner[t] = i
		parent[t] = parentLink{}
		queue = append(queue, t)
	}

	nodes := make(map[NodeRef]bool)
	edges := make(map[uint64]Edge)
	for _, t := range terminals {
		nodes[t] = true
	}

	// addChain walks the parent links from n back to its terminal, adding
	// the traversed nodes and edges to the result.
	addChain := func(n NodeRef) {
		cur := n
		for {
			nodes[cur] = true
			link := parent[cur]
			if link.via == nil {
				return
			}
			edges[link.via.ID] = *link.via
			cur = link.prev
		}
	}

	for len(queue) > 0 && components > 1 {
		cur := queue[0]
		queue = queue[1:]
		curComp := owner[cur]
		for _, h := range g.adj[cur] {
			peer := h.peer
			if prevOwner, seen := owner[peer]; seen {
				if find(prevOwner) != find(curComp) {
					// Frontiers meet: join the two components through
					// cur -(h.edge)- peer.
					addChain(cur)
					addChain(peer)
					edges[h.edge.ID] = *h.edge
					union(prevOwner, curComp)
					components--
					if components == 1 {
						break
					}
				}
				continue
			}
			owner[peer] = curComp
			parent[peer] = parentLink{prev: cur, via: h.edge}
			queue = append(queue, peer)
		}
	}
	if components > 1 {
		return nil, fmt.Errorf("%w: terminals are not all connected", ErrNoPath)
	}
	return assembleSubgraph(terminals, nodes, edges), nil
}

func assembleSubgraph(terminals []NodeRef, nodes map[NodeRef]bool, edges map[uint64]Edge) *Subgraph {
	s := &Subgraph{Terminals: append([]NodeRef(nil), terminals...)}
	for n := range nodes {
		s.Nodes = append(s.Nodes, n)
	}
	sort.Slice(s.Nodes, func(i, j int) bool {
		if s.Nodes[i].Kind != s.Nodes[j].Kind {
			return s.Nodes[i].Kind < s.Nodes[j].Kind
		}
		return s.Nodes[i].Key < s.Nodes[j].Key
	})
	for _, e := range edges {
		s.Edges = append(s.Edges, e)
	}
	sort.Slice(s.Edges, func(i, j int) bool { return s.Edges[i].ID < s.Edges[j].ID })
	return s
}
