package agraph

// The traversal arena: reusable epoch-stamped visited/parent/component
// storage indexed by dense node index, plus the BFS frontier. Arenas are
// pooled per graph, so steady-state traversals (FindPath, Connect,
// ReachableEach) allocate nothing beyond their results: a fresh
// map[NodeRef]parentLink per BFS used to dominate both the time and the
// allocation profile of the path/connect primitives.

// parentLink records how a node was first reached during a traversal.
type parentLink struct {
	prev int32
	via  *Edge
}

type arena struct {
	epoch  uint32
	seen   []uint32     // seen[i] == epoch ⇔ node i visited this traversal
	parent []parentLink // valid only where seen
	comp   []int32      // claiming-terminal index (Connect); valid only where seen
	queue  []int32      // BFS frontier, consumed by index (no pop-front copying)
}

// arena fetches a pooled arena (or a fresh one).
func (g *Graph) arena() *arena {
	if a, ok := g.arenas.Get().(*arena); ok {
		return a
	}
	return &arena{}
}

// release returns the arena to the pool. The arena may retain *Edge
// pointers from the last traversal until its next reuse; edges are
// small and immutable, so this keeps at most one traversal's worth of
// removed edges alive.
func (g *Graph) release(a *arena) { g.arenas.Put(a) }

// reset prepares the arena for a traversal over n dense indices.
func (a *arena) reset(n int) {
	if len(a.seen) < n {
		a.seen = make([]uint32, n)
		a.parent = make([]parentLink, n)
		a.comp = make([]int32, n)
		a.epoch = 0
	}
	a.epoch++
	if a.epoch == 0 { // epoch counter wrapped: wipe stamps and restart
		clear(a.seen)
		a.epoch = 1
	}
	a.queue = a.queue[:0]
}

func (a *arena) seenAt(i int32) bool { return a.seen[i] == a.epoch }

func (a *arena) mark(i, prev int32, via *Edge) {
	a.seen[i] = a.epoch
	a.parent[i] = parentLink{prev: prev, via: via}
}
