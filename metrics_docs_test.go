package graphitti

import (
	"bufio"
	"os"
	"regexp"
	"sort"
	"testing"

	"graphitti/internal/obs"

	// The registry fills at package init; importing the API layer pulls
	// in every instrumented package (core, durable, wal, query, obs).
	_ "graphitti/internal/httpapi"
)

// docRow matches the first column of a metric table row in
// docs/METRICS.md: `| `graphitti_…` | …` (plus the process_/go_ runtime
// gauge families).
var docRow = regexp.MustCompile("^\\| `((?:graphitti_|process_|go_)[a-zA-Z0-9_:]+)` \\|")

// TestMetricsDocParity keeps docs/METRICS.md honest: every registered
// metric family must have a table row, and every table row must name a
// registered family. A metric added without documentation — or a doc row
// for a metric that was renamed or removed — fails here.
func TestMetricsDocParity(t *testing.T) {
	f, err := os.Open("docs/METRICS.md")
	if err != nil {
		t.Fatalf("metric reference missing: %v", err)
	}
	defer f.Close()

	documented := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := docRow.FindStringSubmatch(sc.Text()); m != nil {
			if documented[m[1]] {
				t.Errorf("docs/METRICS.md documents %s twice", m[1])
			}
			documented[m[1]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(documented) == 0 {
		t.Fatal("no metric rows found in docs/METRICS.md — table format changed?")
	}

	registered := obs.Default.Names()
	for _, name := range registered {
		if !documented[name] {
			t.Errorf("metric %s is registered but not documented in docs/METRICS.md", name)
		}
		delete(documented, name)
	}
	if len(documented) > 0 {
		var stale []string
		for name := range documented {
			stale = append(stale, name)
		}
		sort.Strings(stale)
		for _, name := range stale {
			t.Errorf("docs/METRICS.md documents %s, which is not registered", name)
		}
	}
}
