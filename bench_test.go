// Benchmarks regenerating every experiment in EXPERIMENTS.md. The paper
// (an ICDE 2008 demonstration) publishes no quantitative tables; the
// experiment set is DESIGN.md §5: the three figures' scenarios (F1–F3),
// the two fully-specified queries (Q1, Q2), the operator inventories
// (O1–O3), and ablations of the design choices stated in prose (A1–A6).
// cmd/graphitti-bench runs the same harness and prints the rows recorded
// in EXPERIMENTS.md.
package graphitti

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/query"
	"graphitti/internal/relstore"
	"graphitti/internal/rtree"
	"graphitti/internal/trace"
	"graphitti/internal/workload"
)

// --- shared fixtures (built once per size) ---

var (
	fluMu    sync.Mutex
	fluCache = map[int]*workload.InfluenzaStudy{}

	neuroMu    sync.Mutex
	neuroCache = map[int]*workload.NeuroStudy{}
)

func fluStudy(b *testing.B, annotations int) *workload.InfluenzaStudy {
	b.Helper()
	fluMu.Lock()
	defer fluMu.Unlock()
	if s, ok := fluCache[annotations]; ok {
		return s
	}
	cfg := workload.DefaultInfluenza
	cfg.Annotations = annotations
	s, err := workload.Influenza(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fluCache[annotations] = s
	return s
}

func neuroStudy(b *testing.B, images int) *workload.NeuroStudy {
	b.Helper()
	neuroMu.Lock()
	defer neuroMu.Unlock()
	if s, ok := neuroCache[images]; ok {
		return s
	}
	cfg := workload.DefaultNeuro
	cfg.Images = images
	cfg.NoiseAnnotations = images * 5
	s, err := workload.Neuroscience(cfg)
	if err != nil {
		b.Fatal(err)
	}
	neuroCache[images] = s
	return s
}

// --- F1: Fig. 1 scenario — a-graph construction and primitives ---

func BenchmarkF1AGraphScenario(b *testing.B) {
	for _, n := range []int{200, 1000, 5000} {
		study := fluStudy(b, n)
		s := study.Store
		ids := study.AnnotationIDs
		b.Run(fmt.Sprintf("path/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := ids[i%len(ids)]
				c := ids[(i*7+13)%len(ids)]
				_, _ = s.PathBetweenAnnotations(a, c)
			}
		})
		b.Run(fmt.Sprintf("connect3/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t1 := ids[i%len(ids)]
				t2 := ids[(i*5+1)%len(ids)]
				t3 := ids[(i*11+2)%len(ids)]
				_, _ = s.ConnectAnnotations(t1, t2, t3)
			}
		})
	}
}

// --- F2: Fig. 2 — annotation workflow across the six demo data types ---

func BenchmarkF2AnnotateWorkflow(b *testing.B) {
	mkStore := func(b *testing.B) *core.Store {
		cfg := workload.DefaultInfluenza
		cfg.Annotations = 0
		cfg.ProteaseChains = 0
		study, err := workload.Influenza(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return study.Store
	}
	b.Run("sequence-interval", func(b *testing.B) {
		s := mkStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := s.MarkDomainInterval("segment1", interval.Interval{Lo: int64(i % 2000), Hi: int64(i%2000 + 25)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("bench note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clade", func(b *testing.B) {
		s := mkStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := s.MarkClade("H5N1-phylogeny", "duck", "chicken")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("clade note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("subgraph", func(b *testing.B) {
		s := mkStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := s.MarkSubgraph("NS1-interactome", "NS1", "PKR")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("subgraph note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alignment-block", func(b *testing.B) {
		s := mkStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := s.MarkAlignmentBlock("HA-alignment",
				[]string{"NC_00000", "NC_00001"}, interval.Interval{Lo: int64(i % 40), Hi: int64(i%40 + 10)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("block note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record-set", func(b *testing.B) {
		s := mkStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := s.MarkRecords("isolates", relstore.S("A/goose/0/1996"))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("record note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("image-region", func(b *testing.B) {
		study, err := workload.Neuroscience(workload.NeuroConfig{
			Seed: 1, Images: 4, RegionsPerImage: 0, TP53Annotations: 0, NoiseAnnotations: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := study.Store
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := float64(i % 900)
			m, err := s.MarkImageRegion(study.ImageIDs[i%len(study.ImageIDs)],
				rtree.Rect2D(x, x, x+20, x+20))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
				Body(fmt.Sprintf("region note %d", i)).Refer(m)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- F3: Fig. 3 — query-tab graph query + correlated data ---

func BenchmarkF3QueryTab(b *testing.B) {
	const src = `
select graph
where {
  ?a isa annotation ; contains "protease" .
  ?r isa referent ; kind interval .
  ?o isa object ; type dna_sequences .
  ?a annotates ?r .
  ?r marks ?o .
}`
	for _, n := range []int{200, 1000, 5000} {
		study := fluStudy(b, n)
		p := query.NewProcessor(study.Store)
		q := query.MustParse(src)
		b.Run(fmt.Sprintf("query/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecuteParsed(q, query.DefaultOptions); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("correlated/anns=%d", n), func(b *testing.B) {
			ids := study.AnnotationIDs
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := study.Store.CorrelatedData(ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Q1: the intro query ---

func BenchmarkQ1TP53(b *testing.B) {
	for _, images := range []int{12, 48, 96} {
		study := neuroStudy(b, images)
		b.Run(fmt.Sprintf("images=%d", images), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := QueryTP53Images(study.Store, TP53Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Annotations) != len(study.TP53Annotations) {
					b.Fatalf("wrong answer: %d", len(res.Annotations))
				}
			}
		})
	}
}

// --- Q2: the query-tab query ---

func BenchmarkQ2Protease(b *testing.B) {
	for _, n := range []int{200, 1000, 5000} {
		study := fluStudy(b, n)
		b.Run(fmt.Sprintf("anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chains, err := QueryConsecutiveKeyword(study.Store, ConsecutiveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(chains) < workload.DefaultInfluenza.ProteaseChains {
					b.Fatalf("missed planted chains: %d", len(chains))
				}
			}
		})
	}
}

// --- O1: SUB_X operators ---

func BenchmarkO1SubXOps(b *testing.B) {
	b.Run("interval-ifOverlap", func(b *testing.B) {
		a := interval.Interval{Lo: 0, Hi: 100}
		for i := 0; i < b.N; i++ {
			q := interval.Interval{Lo: int64(i % 200), Hi: int64(i%200 + 50)}
			_ = a.Overlaps(q)
		}
	})
	b.Run("interval-intersect", func(b *testing.B) {
		a := interval.Interval{Lo: 0, Hi: 100}
		for i := 0; i < b.N; i++ {
			q := interval.Interval{Lo: int64(i % 200), Hi: int64(i%200 + 50)}
			_, _ = a.Intersect(q)
		}
	})
	b.Run("rect-ifOverlap", func(b *testing.B) {
		a := rtree.Rect2D(0, 0, 100, 100)
		for i := 0; i < b.N; i++ {
			x := float64(i % 200)
			_ = a.Overlaps(rtree.Rect2D(x, x, x+50, x+50))
		}
	})
	b.Run("rect-intersect", func(b *testing.B) {
		a := rtree.Rect2D(0, 0, 100, 100)
		for i := 0; i < b.N; i++ {
			x := float64(i % 200)
			_, _ = a.Intersect(rtree.Rect2D(x, x, x+50, x+50))
		}
	})
	// next on a populated domain tree.
	var tr interval.Tree[string]
	for i := 0; i < 10_000; i++ {
		lo := int64(i * 10)
		if err := tr.Insert(interval.Interval{Lo: lo, Hi: lo + 8}, uint64(i), "x"); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("interval-next", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lo := int64((i * 97) % 99_000)
			_, _ = tr.Next(interval.Interval{Lo: lo, Hi: lo + 5})
		}
	})
}

// --- O2: ontology operators ---

func BenchmarkO2OntologyOps(b *testing.B) {
	for _, shape := range []struct{ depth, fanout int }{{4, 4}, {6, 4}} {
		o := workload.LayeredOntology("bench", shape.depth, shape.fanout, 1)
		name := fmt.Sprintf("d%d-f%d-terms=%d", shape.depth, shape.fanout, o.Len())
		b.Run("CI/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := o.CI("root"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("CmRI/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := o.CmRI("root", []string{ontology.IsA, ontology.PartOf}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("SubTree/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := o.SubTree("root", []string{ontology.IsA}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("SubTreeDiff/"+name, func(b *testing.B) {
			ci, err := o.CI("root")
			if err != nil || len(ci) == 0 {
				b.Fatal("no descendants")
			}
			y := ci[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.SubTreeDiff("root", y, []string{ontology.IsA}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("mCmRI/"+name, func(b *testing.B) {
			ci, _ := o.CI("root")
			cs := []string{"root", ci[len(ci)/2]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.MCmRI(cs, ontology.InstanceRelations); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- O3: a-graph primitives vs graph size ---

func benchGraph(stars, size int) (*agraph.Graph, []agraph.NodeRef) {
	g := agraph.New()
	hub := agraph.Object("hub", "0")
	var terms []agraph.NodeRef
	for s := 0; s < stars; s++ {
		c := agraph.ContentRoot(uint64(s))
		terms = append(terms, c)
		for i := 0; i < size; i++ {
			r := agraph.Referent(uint64(s*size + i))
			g.AddEdge(c, r, agraph.LabelAnnotates)
			if i == 0 {
				g.AddEdge(r, hub, agraph.LabelMarks)
			}
		}
	}
	return g, terms
}

func BenchmarkO3AGraphPrimitives(b *testing.B) {
	for _, size := range []int{100, 1000, 10_000} {
		g, terms := benchGraph(6, size)
		b.Run(fmt.Sprintf("path/nodes=%d", g.NodeCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.FindPath(terms[0], terms[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("connect4/nodes=%d", g.NodeCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.Connect(terms[0], terms[1], terms[2], terms[3]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1: per-chromosome consolidation vs per-sequence trees ---

func BenchmarkA1IndexConsolidation(b *testing.B) {
	const (
		domains      = 8
		seqsPerDom   = 16
		marksPerSeq  = 64
		domainLength = 100_000
	)
	rng := rand.New(rand.NewSource(9))
	type mark struct {
		domain, seqID string
		iv            interval.Interval
	}
	var marks []mark
	for d := 0; d < domains; d++ {
		for q := 0; q < seqsPerDom; q++ {
			for m := 0; m < marksPerSeq; m++ {
				lo := rng.Int63n(domainLength - 200)
				marks = append(marks, mark{
					domain: fmt.Sprintf("chr%d", d),
					seqID:  fmt.Sprintf("chr%d-seq%d", d, q),
					iv:     interval.Interval{Lo: lo, Hi: lo + 20 + rng.Int63n(180)},
				})
			}
		}
	}
	// Consolidated: one tree per domain (the paper's design).
	consolidated := map[string]*interval.Tree[string]{}
	for i, m := range marks {
		tr := consolidated[m.domain]
		if tr == nil {
			tr = &interval.Tree[string]{}
			consolidated[m.domain] = tr
		}
		if err := tr.Insert(m.iv, uint64(i), m.seqID); err != nil {
			b.Fatal(err)
		}
	}
	// Fragmented: one tree per annotated sequence (the rejected design).
	fragmented := map[string]*interval.Tree[string]{}
	perDomainSeqs := map[string][]string{}
	for i, m := range marks {
		tr := fragmented[m.seqID]
		if tr == nil {
			tr = &interval.Tree[string]{}
			fragmented[m.seqID] = tr
			perDomainSeqs[m.domain] = append(perDomainSeqs[m.domain], m.seqID)
		}
		if err := tr.Insert(m.iv, uint64(i), m.seqID); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("consolidated", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(consolidated)), "trees")
		total := 0
		for i := 0; i < b.N; i++ {
			d := fmt.Sprintf("chr%d", i%domains)
			lo := int64((i * 911) % (domainLength - 500))
			total += consolidated[d].CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 500})
		}
		_ = total
	})
	b.Run("per-sequence", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(fragmented)), "trees")
		total := 0
		for i := 0; i < b.N; i++ {
			d := fmt.Sprintf("chr%d", i%domains)
			lo := int64((i * 911) % (domainLength - 500))
			q := interval.Interval{Lo: lo, Hi: lo + 500}
			for _, seqID := range perDomainSeqs[d] {
				total += fragmented[seqID].CountOverlapping(q)
			}
		}
		_ = total
	})
}

// --- A2: interval tree vs naive scan ---

func BenchmarkA2IntervalVsScan(b *testing.B) {
	for _, n := range []int{100, 1000, 10_000, 100_000} {
		rng := rand.New(rand.NewSource(3))
		var tr interval.Tree[int]
		var sc interval.Scan[int]
		for i := 0; i < n; i++ {
			lo := rng.Int63n(1_000_000)
			iv := interval.Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(500)}
			if err := tr.Insert(iv, uint64(i), i); err != nil {
				b.Fatal(err)
			}
			if err := sc.Insert(iv, uint64(i), i); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("tree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := int64((i * 7919) % 999_000)
				tr.CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 300})
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := int64((i * 7919) % 999_000)
				sc.CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 300})
			}
		})
	}
}

// --- A3: R-tree vs naive scan ---

func BenchmarkA3RTreeVsScan(b *testing.B) {
	for _, n := range []int{100, 1000, 10_000, 50_000} {
		rng := rand.New(rand.NewSource(5))
		tr, err := rtree.NewTree[int](2)
		if err != nil {
			b.Fatal(err)
		}
		sc, err := rtree.NewScan[int](2)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*10_000, rng.Float64()*10_000
			r := rtree.Rect2D(x, y, x+1+rng.Float64()*40, y+1+rng.Float64()*40)
			if err := tr.Insert(r, uint64(i), i); err != nil {
				b.Fatal(err)
			}
			if err := sc.Insert(r, uint64(i), i); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("rtree/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := float64((i * 7919) % 9900)
				tr.Count(rtree.Rect2D(x, x, x+100, x+100))
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := float64((i * 7919) % 9900)
				sc.Count(rtree.Rect2D(x, x, x+100, x+100))
			}
		})
	}
}

// --- A4: connect() strategies ---

func BenchmarkA4ConnectStrategies(b *testing.B) {
	for _, size := range []int{200, 2000} {
		g, terms := benchGraph(8, size)
		for _, strat := range []agraph.ConnectStrategy{agraph.PairwiseBFS, agraph.ExpandingRing} {
			b.Run(fmt.Sprintf("%v/nodes=%d", strat, g.NodeCount()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := g.ConnectWithStrategy(strat, terms...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- A5: planner sub-query ordering ---

func BenchmarkA5PlannerOrdering(b *testing.B) {
	const src = `
select contents
where {
  ?a isa annotation .
  ?r isa referent ; kind interval ; domain "segment1" ; overlaps [0, 120) .
  ?a annotates ?r .
}`
	for _, n := range []int{1000, 5000} {
		study := fluStudy(b, n)
		p := query.NewProcessor(study.Store)
		q := query.MustParse(src)
		for _, ordered := range []bool{true, false} {
			name := "selectivity"
			if !ordered {
				name = "naive"
			}
			b.Run(fmt.Sprintf("%s/anns=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.ExecuteParsed(q, query.Options{OrderBySelectivity: ordered}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- A7: STR bulk load vs incremental R-tree construction ---

func BenchmarkA7BulkLoadVsIncremental(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		rng := rand.New(rand.NewSource(11))
		entries := make([]rtree.Entry[int], n)
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*10_000, rng.Float64()*10_000
			entries[i] = rtree.Entry[int]{
				Rect: rtree.Rect2D(x, y, x+1+rng.Float64()*30, y+1+rng.Float64()*30),
				ID:   uint64(i), Value: i,
			}
		}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, err := rtree.NewTree[int](2)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range entries {
					if err := tr.Insert(e.Rect, e.ID, e.Value); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("str-bulk/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rtree.BulkLoad(2, entries); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Query cost on the two trees (packing quality).
		inc, _ := rtree.NewTree[int](2)
		for _, e := range entries {
			_ = inc.Insert(e.Rect, e.ID, e.Value)
		}
		bulk, err := rtree.BulkLoad(2, entries)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("query-incremental/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := float64((i * 7919) % 9900)
				inc.Count(rtree.Rect2D(x, x, x+80, x+80))
			}
		})
		b.Run(fmt.Sprintf("query-str/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x := float64((i * 7919) % 9900)
				bulk.Count(rtree.Rect2D(x, x, x+80, x+80))
			}
		})
	}
}

// --- SearchContents: parallel collection scan vs worker count ---

// BenchmarkSearchContentsParallel measures the XQuery collection scan as
// the worker pool grows (SearchContents fans out across GOMAXPROCS over a
// pinned immutable view; results are byte-identical to the serial scan).
func BenchmarkSearchContentsParallel(b *testing.B) {
	study := fluStudy(b, 5000)
	const expr = `contains(/annotation/body, "protease")`
	serial, err := study.Store.SearchContents(expr)
	if err != nil || len(serial) == 0 {
		b.Fatalf("bad fixture: %d hits, err %v", len(serial), err)
	}
	maxProcs := runtime.GOMAXPROCS(0)
	procsList := []int{1, 2, 4, maxProcs}
	seen := map[int]bool{}
	for _, procs := range procsList {
		if procs < 1 || procs > maxProcs || seen[procs] {
			continue
		}
		seen[procs] = true
		b.Run(fmt.Sprintf("procs=%d/anns=5000", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := study.Store.SearchContents(expr)
				if err != nil || len(got) != len(serial) {
					b.Fatalf("wrong answer: %d hits, err %v", len(got), err)
				}
			}
		})
	}
}

// --- W2: mixed read/write contention ---

// contentionWriters starts n goroutines that keep the store under write
// load (commit one annotation, delete the previous one, so the store size
// stays steady) until stop closes. commit must create one annotation and
// return its ID. Writers are paced (~1k ops/sec each) so the measured
// read latency reflects reader/writer interference, not raw CPU
// oversubscription — unpaced, a single-core runner turns this into a
// noisy fair-share scheduling benchmark.
func contentionWriters(b *testing.B, n int, stop <-chan struct{}, wg *sync.WaitGroup,
	commit func(w, i int) (uint64, error), del func(id uint64) error) {
	b.Helper()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prev uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(time.Millisecond)
				id, err := commit(w, i)
				if err != nil {
					b.Errorf("writer %d: %v", w, err)
					return
				}
				if prev != 0 {
					if err := del(prev); err != nil {
						b.Errorf("writer %d: delete: %v", w, err)
						return
					}
				}
				prev = id
			}
		}(w)
	}
}

// BenchmarkW2MixedReadWrite measures read latency with 8 concurrent
// writers churning commits and deletions — the regression gate for the
// snapshot-isolated read path (under the old global RWMutex, every one of
// these reads serialized against the writers).
func BenchmarkW2MixedReadWrite(b *testing.B) {
	const writers = 8

	fluWriter := func(s *core.Store, domain string) (func(w, i int) (uint64, error), func(id uint64) error) {
		return func(w, i int) (uint64, error) {
				m, err := s.MarkDomainInterval(domain, interval.Interval{Lo: int64(i % 1500), Hi: int64(i%1500 + 20)})
				if err != nil {
					return 0, err
				}
				ann, err := s.Commit(s.NewAnnotation().Creator(fmt.Sprintf("w%d", w)).
					Date("2008-01-01").Body(fmt.Sprintf("contention note %d", i)).Refer(m))
				if err != nil {
					return 0, err
				}
				return ann.ID, nil
			}, func(id uint64) error {
				return s.DeleteAnnotation(id)
			}
	}

	b.Run(fmt.Sprintf("SearchContents/anns=1000/writers=%d", writers), func(b *testing.B) {
		cfg := workload.DefaultInfluenza
		cfg.Annotations = 1000
		study, err := workload.Influenza(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		commit, del := fluWriter(study.Store, study.Segments[0])
		contentionWriters(b, writers, stop, &wg, commit, del)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := study.Store.SearchContents(`contains(/annotation/body, "protease")`); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})

	b.Run(fmt.Sprintf("Q2Protease/anns=1000/writers=%d", writers), func(b *testing.B) {
		cfg := workload.DefaultInfluenza
		cfg.Annotations = 1000
		study, err := workload.Influenza(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		commit, del := fluWriter(study.Store, study.Segments[0])
		contentionWriters(b, writers, stop, &wg, commit, del)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := QueryConsecutiveKeyword(study.Store, ConsecutiveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})

	b.Run(fmt.Sprintf("Q1TP53/images=48/writers=%d", writers), func(b *testing.B) {
		cfg := workload.DefaultNeuro
		cfg.Images = 48
		cfg.NoiseAnnotations = 48 * 5
		study, err := workload.Neuroscience(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		commit := func(w, i int) (uint64, error) {
			x := float64((w*97 + i) % 900)
			m, err := study.Store.MarkImageRegion(study.ImageIDs[i%len(study.ImageIDs)],
				rtree.Rect2D(x, x, x+15, x+15))
			if err != nil {
				return 0, err
			}
			ann, err := study.Store.Commit(study.Store.NewAnnotation().Creator(fmt.Sprintf("w%d", w)).
				Date("2008-01-01").Body(fmt.Sprintf("region churn %d", i)).Refer(m))
			if err != nil {
				return 0, err
			}
			return ann.ID, nil
		}
		contentionWriters(b, writers, stop, &wg, commit, study.Store.DeleteAnnotation)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := QueryTP53Images(study.Store, TP53Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})

	b.Run(fmt.Sprintf("A4Related/anns=1000/writers=%d", writers), func(b *testing.B) {
		cfg := workload.DefaultInfluenza
		cfg.Annotations = 1000
		study, err := workload.Influenza(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ids := study.AnnotationIDs
		stop := make(chan struct{})
		var wg sync.WaitGroup
		commit, del := fluWriter(study.Store, study.Segments[0])
		contentionWriters(b, writers, stop, &wg, commit, del)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := study.Store.RelatedAnnotations(ids[i%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// BenchmarkW2TracedMixedReadWrite is the W2 SearchContents scenario with
// span tracing fully engaged: every writer commit carries a root span
// down the pipeline and every measured read runs under a traced context,
// with finished traces recorded into a live ring. Compared against
// BenchmarkW2MixedReadWrite/SearchContents by scripts/bench.sh to bound
// the always-on tracing overhead (recorded as trace:* rows, outside the
// cross-PR guard set).
func BenchmarkW2TracedMixedReadWrite(b *testing.B) {
	const writers = 8
	b.Run(fmt.Sprintf("SearchContents/anns=1000/writers=%d", writers), func(b *testing.B) {
		cfg := workload.DefaultInfluenza
		cfg.Annotations = 1000
		study, err := workload.Influenza(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tracer := trace.NewTracer(trace.Options{})
		s := study.Store
		domain := study.Segments[0]
		commit := func(w, i int) (uint64, error) {
			sp := trace.NewRoot("http", "")
			defer func() {
				sp.Finish()
				tracer.Record(sp, false)
			}()
			m, err := s.MarkDomainInterval(domain, interval.Interval{Lo: int64(i % 1500), Hi: int64(i%1500 + 20)})
			if err != nil {
				return 0, err
			}
			ann, err := s.Commit(s.NewAnnotation().WithSpan(sp).Creator(fmt.Sprintf("w%d", w)).
				Date("2008-01-01").Body(fmt.Sprintf("contention note %d", i)).Refer(m))
			if err != nil {
				return 0, err
			}
			return ann.ID, nil
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		contentionWriters(b, writers, stop, &wg, commit, s.DeleteAnnotation)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := trace.NewRoot("http", "")
			ctx := trace.NewContext(context.Background(), sp)
			if _, err := s.View().SearchContentsCtx(ctx, `contains(/annotation/body, "protease")`); err != nil {
				b.Fatal(err)
			}
			sp.Finish()
			tracer.Record(sp, false)
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- A6: content keyword index vs document scan ---

func BenchmarkA6ContentIndex(b *testing.B) {
	for _, n := range []int{200, 1000, 5000} {
		study := fluStudy(b, n)
		b.Run(fmt.Sprintf("indexed/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := study.Store.SearchKeyword("protease", true); len(got) == 0 {
					b.Fatal("no hits")
				}
			}
		})
		b.Run(fmt.Sprintf("scan/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := study.Store.SearchKeyword("protease", false); len(got) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

// --- Planner: cost-based join planning with index-driven enumeration ---

var (
	propStudyMu    sync.Mutex
	propStudyCache = map[int]*workload.PropagationStudy{}
)

func propStudy(b *testing.B, annotations int) *workload.PropagationStudy {
	b.Helper()
	propStudyMu.Lock()
	defer propStudyMu.Unlock()
	if s, ok := propStudyCache[annotations]; ok {
		return s
	}
	cfg := workload.PropagationConfig{
		Seed: 42, Sequences: 8, SeqLen: 12 * annotations / 1000 * 125,
		Annotations: annotations, Span: 40, TermFraction: 30,
	}
	s, err := workload.Propagation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	propStudyCache[annotations] = s
	return s
}

// BenchmarkPlanner measures the cost-based planner's two tentpole wins
// at 10k annotations:
//
//   - join3: a 3-variable join (annotation -> referent -> object) where
//     the referent variable is unselective (~10k candidates). Semi-join
//     enumeration binds it from the bound annotation's a-graph edges;
//     the nested sub-benchmark forces the retired candidate×candidate
//     HasEdgeBetween baseline. Results are verified identical and the
//     bindings-tried reduction (≥5x, in practice ~1000x) is asserted.
//   - provenance: a provenance-predicate query at two derived-table
//     sizes. Each candidate is one target-index probe, so the per-op
//     cost tracks the candidate count, not the table size (the retired
//     path rebuilt a target set from a full table scan per variable).
func BenchmarkPlanner(b *testing.B) {
	study := fluStudy(b, 10_000)
	p := query.NewProcessor(study.Store)
	join := query.MustParse(`
select contents
where {
  ?a isa annotation ; contains "protease" .
  ?r isa referent ; kind interval .
  ?o isa object ; type dna_sequences .
  ?a annotates ?r .
  ?r marks ?o .
}`)
	semiOpts := query.Options{OrderBySelectivity: true}
	nestedOpts := query.Options{OrderBySelectivity: true, Join: query.JoinNestedLoop}
	semi, err := p.ExecuteParsed(join, semiOpts)
	if err != nil {
		b.Fatal(err)
	}
	nested, err := p.ExecuteParsed(join, nestedOpts)
	if err != nil {
		b.Fatal(err)
	}
	if semi.Stats.Matches == 0 || semi.Stats.Matches != nested.Stats.Matches {
		b.Fatalf("join strategies disagree: semi %d matches, nested %d", semi.Stats.Matches, nested.Stats.Matches)
	}
	if semi.Stats.BindingsTried*5 > nested.Stats.BindingsTried {
		b.Fatalf("semi-join tried %d bindings, nested %d — want ≥5x reduction",
			semi.Stats.BindingsTried, nested.Stats.BindingsTried)
	}
	b.Run("join3/semijoin/anns=10000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExecuteParsed(join, semiOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("join3/nested/anns=10000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExecuteParsed(join, nestedOpts); err != nil {
				b.Fatal(err)
			}
		}
	})

	prov := query.MustParse(`
select referents
where {
  ?r isa referent ; provenance "p-overlap" .
}`)
	for _, n := range []int{2000, 10_000} {
		ps := propStudy(b, n)
		pp := query.NewProcessor(ps.Store)
		if res, err := pp.ExecuteParsed(prov, semiOpts); err != nil {
			b.Fatal(err)
		} else if len(res.Referents) == 0 {
			b.Fatal("provenance query found nothing; fixture has no overlap facts")
		}
		b.Run(fmt.Sprintf("provenance/anns=%d/facts=%d", n, ps.Store.View().DerivedCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pp.ExecuteParsed(prov, semiOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
