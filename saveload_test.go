package graphitti

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadFacade(t *testing.T) {
	s := New()
	dna, err := NewDNA("NC_1", strings.Repeat("ACGT", 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(dna); err != nil {
		t.Fatal(err)
	}
	if _, err := MarkAndAnnotate(s, "NC_1", Span(10, 50),
		"gupta", "2008-01-01", "snapshot me"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != s.Stats() {
		t.Fatalf("restored stats %+v, want %+v", restored.Stats(), s.Stats())
	}
	hits := restored.SearchKeyword("snapshot", true)
	if len(hits) != 1 {
		t.Fatalf("restored keyword hits = %d", len(hits))
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("bad snapshot accepted")
	}
}
