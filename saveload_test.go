package graphitti

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadFacade(t *testing.T) {
	s := New()
	dna, err := NewDNA("NC_1", strings.Repeat("ACGT", 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(dna); err != nil {
		t.Fatal(err)
	}
	if _, err := MarkAndAnnotate(s, "NC_1", Span(10, 50),
		"gupta", "2008-01-01", "snapshot me"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Stats() != s.Stats() {
		t.Fatalf("restored stats %+v, want %+v", restored.Stats(), s.Stats())
	}
	hits := restored.SearchKeyword("snapshot", true)
	if len(hits) != 1 {
		t.Fatalf("restored keyword hits = %d", len(hits))
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("bad snapshot accepted")
	}
}

// TestSaveLoadPreservesIDs pins the v2 snapshot guarantee the durable
// layer depends on: a loaded store re-assigns the original annotation and
// referent IDs, including across deletion gaps, and continues the ID
// sequence where the original stopped.
func TestSaveLoadPreservesIDs(t *testing.T) {
	s := New()
	dna, err := NewDNA("NC_1", strings.Repeat("ACGT", 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(dna); err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 5; i++ {
		ann, err := MarkAndAnnotate(s, "NC_1", Span(int64(i*20), int64(i*20+10)),
			"gupta", "2008-01-01", "annotation body")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ann.ID)
	}
	// Punch a hole in the ID sequence.
	if err := s.DeleteAnnotation(ids[2]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(s, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{ids[0], ids[1], ids[3], ids[4]} {
		orig, err := s.Annotation(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Annotation(id)
		if err != nil {
			t.Fatalf("annotation %d lost in round trip: %v", id, err)
		}
		if got.Content.String() != orig.Content.String() {
			t.Fatalf("annotation %d content differs", id)
		}
		for i, refID := range orig.ReferentIDs {
			if got.ReferentIDs[i] != refID {
				t.Fatalf("annotation %d referent %d: got ID %d want %d",
					id, i, got.ReferentIDs[i], refID)
			}
		}
	}
	if _, err := restored.Annotation(ids[2]); err == nil {
		t.Fatal("deleted annotation resurrected by round trip")
	}
	// The counters must continue past the gap, not refill it.
	ann, err := MarkAndAnnotate(restored, "NC_1", Span(200, 210),
		"gupta", "2008-01-02", "post-restore")
	if err != nil {
		t.Fatal(err)
	}
	if want := ids[4] + 1; ann.ID != want {
		t.Fatalf("post-restore annotation ID %d, want %d", ann.ID, want)
	}
}
