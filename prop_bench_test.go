package graphitti

import (
	"fmt"
	"testing"

	"graphitti/internal/interval"
	"graphitti/internal/workload"
)

// BenchmarkPropagation contrasts the engine's maintenance paths at 10k
// and 100k source annotations under the full rule set (overlap,
// keyword-gated overlap, ontology closure, shared-referent):
//
//   - delta: one commit+delete pair, i.e. two incremental maintenance
//     steps through the writer (the steady-state per-mutation cost);
//   - control: the same commit+delete pair on an identical store with
//     no rules installed — the baseline mutation cost (dominated at
//     scale by keyword-index posting rewrites for common tokens), so
//     delta minus control is the engine's marginal cost;
//   - recompute: rebuilding the whole derived table from scratch (what
//     every mutation would cost without incremental maintenance, and
//     what rule changes actually pay).
//
// The acceptance bar is delta ≥ 10x cheaper than recompute at 10k; in
// practice the gap is two orders of magnitude and grows linearly with
// the store. Overlap density is held constant across sizes (domain
// length scales with the annotation count), so the comparison isolates
// the maintenance strategy, not the fact count per source.
func BenchmarkPropagation(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		cfg := workload.PropagationConfig{
			Seed: 42, Sequences: 8, SeqLen: 12 * n / 1000 * 125, // domain ≈ 54 bases/annotation
			Annotations: n, Span: 40, TermFraction: 30,
		}
		study, err := workload.Propagation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := study.Store
		baseline := s.View().DerivedCount()
		if baseline == 0 {
			b.Fatal("propagation study produced no derived facts")
		}
		ctlCfg := cfg
		ctlCfg.SkipRules = true
		control, err := workload.Propagation(ctlCfg)
		if err != nil {
			b.Fatal(err)
		}
		domainLen := int64(cfg.Sequences+1) * int64(cfg.SeqLen) / 2

		probe := func(b *testing.B, s *Store, domain string) {
			b.Helper()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lo := (int64(i)*9973 + 17) % (domainLen - cfg.Span)
				m, err := s.MarkDomainInterval(domain, interval.Interval{Lo: lo, Hi: lo + cfg.Span})
				if err != nil {
					b.Fatal(err)
				}
				ann, err := s.Commit(s.NewAnnotation().
					Creator("bench").Date("2026-01-01").Body("hotspot probe").Refer(m))
				if err != nil {
					b.Fatal(err)
				}
				if err := s.DeleteAnnotation(ann.ID); err != nil {
					b.Fatal(err)
				}
			}
		}

		b.Run(fmt.Sprintf("delta/anns=%d", n), func(b *testing.B) {
			probe(b, s, study.Domain)
			b.StopTimer()
			if got := s.View().DerivedCount(); got != baseline {
				b.Fatalf("delta maintenance leaked facts: %d != %d", got, baseline)
			}
		})

		b.Run(fmt.Sprintf("control/anns=%d", n), func(b *testing.B) {
			probe(b, control.Store, control.Domain)
			b.StopTimer()
			if got := control.Store.View().DerivedCount(); got != 0 {
				b.Fatalf("control store derived facts: %d", got)
			}
		})

		b.Run(fmt.Sprintf("recompute/anns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.RecomputeDerived()
			}
			b.StopTimer()
			if got := s.View().DerivedCount(); got != baseline {
				b.Fatalf("recompute changed the fact count: %d != %d", got, baseline)
			}
		})
	}
}
