package graphitti

import (
	"strings"
	"testing"
)

// TestPropagationFacade exercises the facade surface of the propagation
// engine: AddRule, DerivedFrom, ProvenanceOf, Rules, DeleteRule.
func TestPropagationFacade(t *testing.T) {
	store := New()
	dna, err := NewDNA("NC_1", strings.Repeat("ACGT", 500))
	if err != nil {
		t.Fatal(err)
	}
	dna.Domain = "segment4"
	if err := store.RegisterSequence(dna); err != nil {
		t.Fatal(err)
	}
	if err := AddRule(store, Rule{ID: "ov", Edge: EdgeOverlap, Domain: "segment4"}); err != nil {
		t.Fatal(err)
	}

	commit := func(lo, hi int64) *Annotation {
		m, err := store.MarkDomainInterval("segment4", Span(lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		ann, err := store.Commit(store.NewAnnotation().
			Creator("t").Date("2026-01-01").Body("w").Refer(m))
		if err != nil {
			t.Fatal(err)
		}
		return ann
	}
	a1 := commit(100, 200)
	a2 := commit(150, 250)

	facts := DerivedFrom(store, a1.ID)
	if len(facts) != 1 || facts[0].Rule != "ov" {
		t.Fatalf("DerivedFrom(a1) = %v", facts)
	}
	prov, err := ProvenanceOf(store, a2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov) != 1 || prov[0].Source != a1.ID {
		t.Fatalf("ProvenanceOf(a2) = %v", prov)
	}
	if _, err := ProvenanceOf(store, 99999); err == nil {
		t.Fatal("ProvenanceOf of a missing annotation returned no error")
	}
	if rules := Rules(store); len(rules) != 1 || rules[0].ID != "ov" {
		t.Fatalf("Rules = %v", rules)
	}
	if store.Stats().Derived != 2 {
		t.Fatalf("Stats().Derived = %d", store.Stats().Derived)
	}
	if err := DeleteRule(store, "ov"); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Derived != 0 {
		t.Fatal("derived facts survived rule deletion")
	}

	// Save/Load round-trips rules and re-derives facts.
	if err := AddRule(store, Rule{ID: "ov2", Edge: EdgeOverlap, Domain: "segment4"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Save(store, &sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().Derived != 2 || len(Rules(loaded)) != 1 {
		t.Fatalf("loaded store: derived=%d rules=%v", loaded.Stats().Derived, Rules(loaded))
	}
}
