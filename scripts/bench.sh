#!/usr/bin/env bash
# bench.sh — run the F/Q/O/A/W benchmark suites and record the rows as
# BENCH_<date>.json in the repo root, seeding the performance trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh                     # default: -benchtime=1s -count=1
#   scripts/bench.sh --check BASE.json   # also compare medians against a
#                                        # committed baseline and exit 1 on
#                                        # a >REGRESSION_FACTOR regression
#                                        # in the guard benchmarks
#   BENCHTIME=100ms scripts/bench.sh     # quicker smoke
#   COUNT=5 scripts/bench.sh             # repetitions for benchstat/medians
#
# The raw `go test -bench` output is kept next to the JSON so benchstat
# can compare runs: benchstat BENCH_a.txt BENCH_b.txt
set -euo pipefail

cd "$(dirname "$0")/.."

BASELINE=""
if [ "${1:-}" = "--check" ]; then
    BASELINE="${2:?usage: bench.sh --check BASELINE.json}"
    [ -f "$BASELINE" ] || { echo "baseline $BASELINE not found" >&2; exit 2; }
fi

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
# Guard benchmarks for --check: the paper queries and graph primitives
# whose regressions previous PRs fought hardest for, plus the mixed
# read/write contention suite (W2), the parallel collection scan that
# guards the snapshot-isolated read path, the propagation engine's
# incremental delta path (delta vs control vs recompute), and the query
# planner's semi-join + provenance-index wins.
GUARDS="${GUARDS:-BenchmarkQ1TP53|BenchmarkO3AGraphPrimitives|BenchmarkF1AGraphScenario|BenchmarkW2MixedReadWrite|BenchmarkSearchContentsParallel|BenchmarkPropagation|BenchmarkPlanner}"
REGRESSION_FACTOR="${REGRESSION_FACTOR:-2.0}"
DATE="$(date +%Y-%m-%d)"
TXT="BENCH_${DATE}.txt"
JSON="BENCH_${DATE}.json"
# In check mode the current run must never clobber the baseline it is
# being compared against (same-day runs would otherwise compare the file
# to itself and pass vacuously), so it writes to BENCH_current.*.
if [ -n "$BASELINE" ]; then
    TXT="BENCH_current.txt"
    JSON="BENCH_current.json"
fi

PATTERN='BenchmarkF1AGraphScenario|BenchmarkF2AnnotateWorkflow|BenchmarkF3QueryTab|BenchmarkQ1TP53|BenchmarkQ2Protease|BenchmarkO1SubXOps|BenchmarkO2OntologyOps|BenchmarkO3AGraphPrimitives|BenchmarkA1IndexConsolidation|BenchmarkA2IntervalVsScan|BenchmarkA3RTreeVsScan|BenchmarkA4ConnectStrategies|BenchmarkA5PlannerOrdering|BenchmarkA6ContentIndex|BenchmarkA7BulkLoadVsIncremental|BenchmarkW1DurableCommit|BenchmarkW2MixedReadWrite|BenchmarkSearchContentsParallel|BenchmarkPropagation|BenchmarkPlanner'

echo "running benchmark suites (benchtime=${BENCHTIME}, count=${COUNT})…" >&2
go test -run '^$' -bench "$PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TXT"

# Convert the standard benchmark lines to JSON:
#   BenchmarkName/sub=1-8  123  456 ns/op  789 B/op  12 allocs/op
awk -v date="$DATE" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", date, name, $2, nsop
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$TXT" >"$JSON"

echo "wrote $TXT and $JSON" >&2

# Sharded scaling matrix: the W2 write side and durable commits at
# 1/2/4/8 writer pipelines, recorded as "shards:<bench>" rows plus a
# derived "shards:commits_per_sec:<bench>" rate for each point. The
# names carry the shards: prefix so the --check guard below (which
# matches on the pre-/ root of the name) never treats the scaling curve
# as a regression floor.
SHARD_PATTERN='BenchmarkW2ShardedCommits|BenchmarkW1ShardedDurableCommit'
SHARD_TMP="$(mktemp)"
echo "running sharded scaling matrix (benchtime=${BENCHTIME}, count=${COUNT})…" >&2
go test -run '^$' -bench "$SHARD_PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$SHARD_TMP"
# One artifact set per date: the raw lines ride along in the main TXT
# (benchstat handles the mixed file fine) instead of a .shards.txt fork.
grep '^Benchmark' "$SHARD_TMP" >>"$TXT" || true
awk -v date="$DATE" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") nsop = $i
    if (nsop == "") next
    printf ",\n  {\"date\": \"%s\", \"name\": \"shards:%s\", \"iterations\": %s, \"ns_per_op\": %s}", date, name, $2, nsop
    printf ",\n  {\"date\": \"%s\", \"name\": \"shards:commits_per_sec:%s\", \"value\": %.1f}", date, name, 1e9 / nsop
}
' "$SHARD_TMP" >"$JSON.shards"
if [ -s "$JSON.shards" ]; then
    head -n -1 "$JSON" >"$JSON.tmp"
    cat "$JSON.shards" >>"$JSON.tmp"
    printf '\n]\n' >>"$JSON.tmp"
    mv "$JSON.tmp" "$JSON"
    echo "recorded $(grep -c '"name": "shards:' "$JSON") sharded scaling rows into $JSON" >&2
fi
rm -f "$JSON.shards" "$SHARD_TMP"

# Tracing overhead probe: the traced W2 variant (every commit carries a
# span tree into a live ring, every read runs under a traced context)
# against the untraced W2 medians from THIS run — same binary, machine
# and benchtime, so the ratio isolates the tracing cost. Rows are
# recorded with a trace: prefix, which keeps them outside the cross-PR
# --check guard set; the overhead itself is gated here, in-run, at the
# same REGRESSION_FACTOR.
TRACE_PATTERN='BenchmarkW2TracedMixedReadWrite'
TRACE_TMP="$(mktemp)"
echo "running traced W2 overhead probe (benchtime=${BENCHTIME}, count=${COUNT})…" >&2
go test -run '^$' -bench "$TRACE_PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TRACE_TMP"
grep '^Benchmark' "$TRACE_TMP" >>"$TXT" || true
awk -v date="$DATE" '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") nsop = $i
    if (nsop == "") next
    printf ",\n  {\"date\": \"%s\", \"name\": \"trace:%s\", \"iterations\": %s, \"ns_per_op\": %s}", date, name, $2, nsop
}
' "$TRACE_TMP" >"$JSON.trace"
if [ -s "$JSON.trace" ]; then
    head -n -1 "$JSON" >"$JSON.tmp"
    cat "$JSON.trace" >>"$JSON.tmp"
    printf '\n]\n' >>"$JSON.tmp"
    mv "$JSON.tmp" "$JSON"
    echo "recorded $(grep -c '"name": "trace:' "$JSON") tracing rows into $JSON" >&2
fi
rm -f "$JSON.trace" "$TRACE_TMP"

echo "checking traced-vs-untraced W2 overhead (limit ${REGRESSION_FACTOR}x)…" >&2
awk -v factor="$REGRESSION_FACTOR" '
function medianof(arr, n,    i, t, j) {
    for (i = 2; i <= n; i++) {
        t = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > t; j--) arr[j + 1] = arr[j]
        arr[j + 1] = t
    }
    if (n % 2) return arr[(n + 1) / 2]
    return (arr[n / 2] + arr[n / 2 + 1]) / 2
}
/^BenchmarkW2MixedReadWrite\/SearchContents/ {
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") plain[++np] = $i + 0
}
/^BenchmarkW2TracedMixedReadWrite\/SearchContents/ {
    for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") traced[++nt] = $i + 0
}
END {
    if (np == 0 || nt == 0) {
        print "missing W2 traced/untraced samples to compare" > "/dev/stderr"
        exit 2
    }
    pm = medianof(plain, np); tm = medianof(traced, nt)
    ratio = tm / pm
    printf "W2 SearchContents median: untraced %.0f ns/op, traced %.0f ns/op (%.2fx)\n", pm, tm, ratio
    if (ratio > factor) {
        printf "tracing overhead %.2fx exceeds the %sx gate\n", ratio, factor > "/dev/stderr"
        exit 1
    }
}
' "$TXT"

# Append selected /metrics readings (the durable mixed workload's commit
# latency quantiles and WAL flush batching) as {"name": "metrics:…",
# "value": …} rows. They carry no ns_per_op key, so the --check guard
# below ignores them; they exist to put observability numbers on the same
# per-PR trajectory as the benchmarks.
METRICS_CSV="$(mktemp)"
trap 'rm -f "$METRICS_CSV"' EXIT
echo "collecting /metrics deltas from the durable mixed workload…" >&2
go run ./cmd/graphitti-bench -metrics-dump "$METRICS_CSV"
awk -v date="$DATE" '
BEGIN { FS = "," }
$1 ~ /^(graphitti_store_commit_duration_seconds_(p50|p99)|graphitti_durable_commit_wait_seconds_(p50|p99)|graphitti_wal_flushes_total|graphitti_wal_flush_batch_records_(count|p50|p99)|graphitti_wal_fsync_duration_seconds_(p50|p99))$/ {
    if ($3 == "NaN") next
    printf ",\n  {\"date\": \"%s\", \"name\": \"metrics:%s\", \"value\": %s}", date, $1, $3
}
' "$METRICS_CSV" >"$JSON.metrics"
if [ -s "$JSON.metrics" ]; then
    # Splice the rows into the JSON array before the closing bracket.
    head -n -1 "$JSON" >"$JSON.tmp"
    cat "$JSON.metrics" >>"$JSON.tmp"
    printf '\n]\n' >>"$JSON.tmp"
    mv "$JSON.tmp" "$JSON"
    echo "recorded $(grep -c '"name": "metrics:' "$JSON") metric rows into $JSON" >&2
fi
rm -f "$JSON.metrics"

[ -z "$BASELINE" ] && exit 0

# --check: compare per-benchmark ns/op medians for the guard suites. The
# JSON rows are the one-object-per-line format this script itself emits,
# so a constrained awk parse is safe.
echo "checking guard benchmarks (${GUARDS}) against ${BASELINE} (limit ${REGRESSION_FACTOR}x)…" >&2
awk -v guards="$GUARDS" -v factor="$REGRESSION_FACTOR" -v base="$BASELINE" -v cur="$JSON" '
function medianof(arr, n,    i, tmp, t, j) {
    # insertion-sort the n values, return the median
    for (i = 2; i <= n; i++) {
        t = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > t; j--) arr[j + 1] = arr[j]
        arr[j + 1] = t
    }
    if (n % 2) return arr[(n + 1) / 2]
    return (arr[n / 2] + arr[n / 2 + 1]) / 2
}
function collect(file, vals, counts,    line, name, ns, m) {
    while ((getline line < file) > 0) {
        if (match(line, /"name": "[^"]+"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            if (match(line, /"ns_per_op": [0-9.]+/)) {
                ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
                counts[name]++
                vals[name, counts[name]] = ns
            }
        }
    }
    close(file)
}
BEGIN {
    split("", bvals); split("", bcounts)
    split("", cvals); split("", ccounts)
    collect(base, bvals, bcounts)
    collect(cur, cvals, ccounts)
    bad = 0; checked = 0
    for (name in ccounts) {
        root = name; sub(/\/.*/, "", root)
        if (root !~ "^(" guards ")$") continue
        if (!(name in bcounts)) continue  # new sub-benchmark: no baseline
        n = ccounts[name]; for (i = 1; i <= n; i++) a[i] = cvals[name, i]
        curmed = medianof(a, n)
        n = bcounts[name]; for (i = 1; i <= n; i++) a[i] = bvals[name, i]
        basemed = medianof(a, n)
        if (basemed <= 0) continue
        checked++
        ratio = curmed / basemed
        status = "ok"
        if (ratio > factor) { status = "REGRESSION"; bad++ }
        printf "%-70s %12.0f -> %12.0f ns/op  %5.2fx  %s\n", name, basemed, curmed, ratio, status
    }
    if (checked == 0) { print "no guard benchmarks matched between baseline and current run" > "/dev/stderr"; exit 2 }
    if (bad > 0) { printf "%d guard benchmark(s) regressed beyond %sx\n", bad, factor > "/dev/stderr"; exit 1 }
    print "all guard benchmarks within " factor "x of baseline"
}
'
