#!/usr/bin/env bash
# bench.sh — run the F/Q/O/A benchmark suites and record the rows as
# BENCH_<date>.json in the repo root, seeding the performance trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh              # default: -benchtime=1s -count=1
#   BENCHTIME=100ms scripts/bench.sh   # quicker smoke
#   COUNT=5 scripts/bench.sh           # repetitions for benchstat
#
# The raw `go test -bench` output is kept next to the JSON so benchstat
# can compare runs: benchstat BENCH_a.txt BENCH_b.txt
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
DATE="$(date +%Y-%m-%d)"
TXT="BENCH_${DATE}.txt"
JSON="BENCH_${DATE}.json"

PATTERN='BenchmarkF1AGraphScenario|BenchmarkF2AnnotateWorkflow|BenchmarkF3QueryTab|BenchmarkQ1TP53|BenchmarkQ2Protease|BenchmarkO1SubXOps|BenchmarkO2OntologyOps|BenchmarkO3AGraphPrimitives|BenchmarkA1IndexConsolidation|BenchmarkA2IntervalVsScan|BenchmarkA3RTreeVsScan|BenchmarkA4ConnectStrategies|BenchmarkA5PlannerOrdering|BenchmarkA6ContentIndex|BenchmarkA7BulkLoadVsIncremental'

echo "running benchmark suites (benchtime=${BENCHTIME}, count=${COUNT})…" >&2
go test -run '^$' -bench "$PATTERN" -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TXT"

# Convert the standard benchmark lines to JSON:
#   BenchmarkName/sub=1-8  123  456 ns/op  789 B/op  12 allocs/op
awk -v date="$DATE" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    nsop = ""; bop = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") nsop = $i
        if ($(i + 1) == "B/op") bop = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (nsop == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"date\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", date, name, $2, nsop
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$TXT" >"$JSON"

echo "wrote $TXT and $JSON" >&2
