#!/usr/bin/env bash
# faults.sh — run the robustness gauntlet: the fault-injection harness
# (randomized flaky-disk runs plus the deterministic degradation tests),
# the degraded-server HTTP tests, and the graceful-shutdown test, all
# under the race detector and repeated to shake out schedule-dependent
# bugs.
#
# Usage:
#   scripts/faults.sh            # default: -count=3
#   COUNT=10 scripts/faults.sh   # more repetitions
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"

go test -race -count="$COUNT" -v \
    -run 'TestFaultInjectionRecovery|TestDegradeOnFsyncError|TestTornWriteRecovered|TestReopenFailsWhileDiskBroken|TestCompactionFaultKeepsPriorCheckpoint|TestRotationFaultDegradesButRecovers' \
    ./internal/durable/

go test -race -count="$COUNT" ./internal/faultfs/

go test -race -count="$COUNT" \
    -run 'TestDegradedServerServesReadsRefusesWrites|TestRecoverRequiresDurableStore|TestBodyCap' \
    ./internal/httpapi/

go test -race -count="$COUNT" -run 'TestGracefulShutdownClosesStore' ./cmd/graphitti-server/
