#!/usr/bin/env bash
# metrics-scrape.sh — boot a real graphitti-server, exercise a handful of
# endpoints so every instrumented subsystem has samples, scrape
# GET /metrics, and fail if the payload is not valid Prometheus text
# exposition with at least MIN_FAMILIES metric families (HTTP, WAL,
# durable store, core writer and query metrics together clear 20).
#
# Usage:
#   scripts/metrics-scrape.sh
#   MIN_FAMILIES=25 scripts/metrics-scrape.sh
set -euo pipefail

cd "$(dirname "$0")/.."

MIN_FAMILIES="${MIN_FAMILIES:-20}"
WORK="$(mktemp -d)"
SERVER_LOG="$WORK/server.log"
SCRAPE="$WORK/metrics.txt"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/graphitti-server" ./cmd/graphitti-server

# Durable mode so the WAL and durable-store metrics are live too;
# -slow-request 1ns forces the slow-request span-breakdown log line on
# every request so the tracing pipeline is checked end to end.
"$WORK/graphitti-server" -addr 127.0.0.1:0 -data-dir "$WORK/data" \
    -study influenza -anns 50 -slow-request 1ns 2>"$SERVER_LOG" &
PID=$!

# The listen address is logged structured on stderr: … msg=listening addr=…
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$SERVER_LOG" | head -n 1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "server exited during startup:" >&2; cat "$SERVER_LOG" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never logged a listen address" >&2; cat "$SERVER_LOG" >&2; exit 1; }
BASE="http://$ADDR"

# Touch every instrumented layer: reads, a write, a query, a search, an
# error (for the request-ID envelope path) and a 404 (the "unmatched"
# route label).
curl -fsS "$BASE/healthz" >/dev/null
curl -fsS "$BASE/readyz" >/dev/null
curl -fsS "$BASE/api/stats" >/dev/null
curl -fsS "$BASE/api/annotations" >/dev/null
curl -fsS -X POST "$BASE/api/query" \
    -d '{"query":"select contents where { ?a isa annotation ; contains \"protease\" . }"}' >/dev/null
curl -fsS -X POST "$BASE/api/search" \
    -d '{"expr":"contains(/annotation/body, \"protease\")"}' >/dev/null
curl -fsS -X POST "$BASE/api/annotations" \
    -d '{"creator":"ci","date":"2008-04-07","body":"scrape probe","marks":[{"type":"interval","domain":"segment1","lo":10,"hi":40}]}' >/dev/null
curl -sS "$BASE/api/annotations/999999" >/dev/null   # 404 with requestId envelope
curl -sS "$BASE/no/such/route" >/dev/null            # "unmatched" route label

# --- span tracing checks ---------------------------------------------

# Every response must carry a W3C traceparent; an incoming one must be
# honored (same trace ID echoed back).
UPSTREAM="00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
TP="$(curl -fsSD - -o /dev/null -H "traceparent: $UPSTREAM" "$BASE/api/stats" \
      | tr -d '\r' | sed -n 's/^[Tt]raceparent: //p')"
case "$TP" in
    00-4bf92f3577b34da6a3ce929d0e0e4736-*) : ;;
    *) echo "traceparent not honored/echoed: got '$TP'" >&2; exit 1 ;;
esac

# ?trace=1 on a durable commit returns the span tree inline; render it
# with the CLI and require every pipeline layer's span kind.
TRACED="$WORK/traced.json"
curl -fsS -X POST "$BASE/api/annotations?trace=1" \
    -d '{"creator":"ci","date":"2008-04-07","body":"traced probe","marks":[{"type":"interval","domain":"segment1","lo":50,"hi":80}]}' \
    >"$TRACED"
TREE="$(go run ./cmd/graphitti traces -f "$TRACED")"
for kind in http commit wal.flush; do
    echo "$TREE" | grep -q "$kind" || {
        echo "?trace=1 span tree missing kind '$kind':" >&2
        echo "$TREE" >&2; exit 1
    }
done

# /debug/traces serves the rings; the traced request must be retrievable
# and the min-duration filter must parse.
DUMP="$WORK/traces.json"
curl -fsS "$BASE/debug/traces?route=POST%20/api/annotations" >"$DUMP"
RINGS="$(go run ./cmd/graphitti traces -f "$DUMP")"
echo "$RINGS" | grep -q "http" || {
    echo "/debug/traces returned no http root spans" >&2; exit 1
}
curl -fsS "$BASE/debug/traces?min=10h" | grep -q '"count":0' || {
    echo "/debug/traces?min=10h should return zero traces" >&2; exit 1
}

# The forced slow-request log line must carry the span breakdown.
grep -q 'slow request' "$SERVER_LOG" && grep -q 'spans=' "$SERVER_LOG" || {
    echo "no slow-request span-breakdown log line despite -slow-request 1ns" >&2
    cat "$SERVER_LOG" >&2; exit 1
}

# ---------------------------------------------------------------------

curl -fsS "$BASE/metrics" >"$SCRAPE"

# Strict format validation + family floor via the CLI's validator.
go run ./cmd/graphitti metrics-lint -f "$SCRAPE" -min-families "$MIN_FAMILIES"

# Spot-check that each subsystem actually reported.
for family in graphitti_http_requests_total \
              graphitti_wal_fsync_duration_seconds \
              graphitti_durable_health_state \
              graphitti_store_commit_duration_seconds \
              graphitti_query_duration_seconds \
              graphitti_trace_span_duration_seconds \
              graphitti_shard_busy_micros \
              process_uptime_seconds; do
    grep -q "^# TYPE $family " "$SCRAPE" || {
        echo "family $family missing from /metrics scrape" >&2; exit 1
    }
done

# /debug/vars must be one JSON object (cheap shape check; the httpapi
# tests parse it properly).
VARS="$(curl -fsS "$BASE/debug/vars")"
case "$VARS" in
    {*}) : ;;
    *) echo "/debug/vars is not a JSON object: ${VARS:0:80}" >&2; exit 1 ;;
esac

echo "metrics scrape ok: $(grep -c '^# TYPE' "$SCRAPE") families from $BASE/metrics" >&2
