#!/usr/bin/env bash
# lint.sh — the one lint entry point, used identically by CI and local
# development so the two can never disagree about what "lint-clean" means.
#
# Gates, in order:
#   1. go vet ./...
#   2. staticcheck ./...        (if installed; CI installs a pinned release)
#   3. graphitti-lint ./...     (repo-invariant analyzers, docs/LINTING.md)
#
# Prints each gate's verdict and ends with exactly one summary line:
#   lint: PASS (<gates>)   or   lint: FAIL (<failed gates>)
set -u
cd "$(dirname "$0")/.."

ran=()
failed=()

run() {
  local name="$1"
  shift
  local out
  if out=$("$@" 2>&1); then
    echo "lint: $name ok"
  else
    echo "lint: $name FAILED" >&2
    [ -n "$out" ] && echo "$out" >&2
    failed+=("$name")
  fi
  ran+=("$name")
}

run "go vet" go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  run "staticcheck" staticcheck ./...
else
  echo "lint: staticcheck skipped (not installed; CI runs the pinned release)"
fi

run "graphitti-lint" go run ./cmd/graphitti-lint ./...

if [ "${#failed[@]}" -gt 0 ]; then
  echo "lint: FAIL (${failed[*]})"
  exit 1
fi
echo "lint: PASS (${ran[*]})"
