package graphitti

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/rtree"
	"graphitti/internal/shard"
)

// The sharded scaling matrix: the W2 write side and the W1 durable
// commit path at 1/2/4/8 writer pipelines. scripts/bench.sh records
// these as shards:* rows in BENCH_<date>.json, outside the regression
// gate's guard set — they chart the scaling curve, not a floor.
//
// Writers are pinned to routing domains spread round-robin across the
// shards, so every commit is intra-shard and the measured speedup is
// the pipeline parallelism itself (router overhead included), not
// cross-shard coordination. Even on a single core the in-memory matrix
// gains from sharding — each pipeline's copy-on-write structures hold
// 1/N of the data, so publishing an epoch copies less — while the full
// parallel win needs a multi-core runner. The durable matrix cuts the
// other way at low core counts: one shard's group commit batches all
// writers into a single fdatasync stream, and splitting them across
// segments trades batching for parallel syncs.

// keyRoutedTo finds a key of the form "<prefix>-<i>" that the router
// places on the wanted shard.
func keyRoutedTo(b *testing.B, shards, want int, prefix string) string {
	b.Helper()
	r := core.Router{Shards: shards}
	for i := 0; i < 100_000; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if r.ShardOfKey(k) == want {
			return k
		}
	}
	b.Fatalf("no %q key routes to shard %d/%d", prefix, want, shards)
	return ""
}

// BenchmarkW2ShardedCommits is the W2 mixed-workload write side — each
// writer churns commit+delete against its own coordinate domain so the
// store size stays steady — across shard counts. ns/op is per commit
// (the paired delete rides inside it), so commits/s = 1e9/ns_per_op.
func BenchmarkW2ShardedCommits(b *testing.B) {
	const (
		writers = 8
		preload = 500 // per-domain resident annotations
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/writers=%d", shards, writers), func(b *testing.B) {
			sh := shard.New(shards)
			domains := make([]string, writers)
			for w := 0; w < writers; w++ {
				domains[w] = keyRoutedTo(b, shards, w%shards, fmt.Sprintf("w%d-dom", w))
				sq, err := seq.New(domains[w], seq.DNA, strings.Repeat("ACGT", 2048))
				if err != nil {
					b.Fatal(err)
				}
				if err := sh.RegisterSequence(sq); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < preload; i++ {
					m, err := sh.MarkSequenceInterval(domains[w],
						interval.Interval{Lo: int64(i * 4), Hi: int64(i*4 + 16)})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := sh.Commit(sh.NewAnnotation().Creator("pre").
						Date("2026-08-08").Body(fmt.Sprintf("resident %d", i)).Refer(m)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var prev uint64
					for {
						i := atomic.AddInt64(&next, 1)
						if i > int64(b.N) {
							return
						}
						lo := int64(i%2000) * 4
						m, err := sh.MarkSequenceInterval(domains[g],
							interval.Interval{Lo: lo, Hi: lo + 20})
						if err != nil {
							b.Error(err)
							return
						}
						ann, err := sh.Commit(sh.NewAnnotation().
							Creator(fmt.Sprintf("w%d", g)).Date("2026-08-08").
							Body(fmt.Sprintf("churn %d", i)).Refer(m))
						if err != nil {
							b.Error(err)
							return
						}
						if prev != 0 {
							if err := sh.DeleteAnnotation(prev); err != nil {
								b.Error(err)
								return
							}
						}
						prev = ann.ID
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// BenchmarkW1ShardedDurableCommit is the W1 logged-commit path across
// shard counts: every acknowledged commit fdatasyncs its shard's WAL
// segment, group commit batches writers that share a shard, and
// separate shards sync independently.
func BenchmarkW1ShardedDurableCommit(b *testing.B) {
	const writers = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/writers=%d", shards, writers), func(b *testing.B) {
			sh, err := shard.Open(b.TempDir(), shards, durable.Options{CompactThreshold: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { sh.Close() })
			// One coordinate system + image per writer, spread across the
			// shards; images route with their system.
			images := make([]string, writers)
			for w := 0; w < writers; w++ {
				sys := keyRoutedTo(b, shards, w%shards, fmt.Sprintf("w%d-atlas", w))
				cs, err := imaging.NewCoordinateSystem(sys, rtree.Rect2D(0, 0, 10_000, 10_000))
				if err != nil {
					b.Fatal(err)
				}
				if err := sh.RegisterCoordinateSystem(cs); err != nil {
					b.Fatal(err)
				}
				images[w] = sys + "-img"
				im, err := imaging.NewImage(images[w], sys, rtree.Rect2D(0, 0, 1000, 1000), imaging.Identity(2))
				if err != nil {
					b.Fatal(err)
				}
				if err := sh.RegisterImage(im); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1)
						if i > int64(b.N) {
							return
						}
						x := float64(i % 900)
						y := float64((i / 900) % 900)
						m, err := sh.MarkImageRegion(images[g], rtree.Rect2D(x, y, x+7, y+7))
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := sh.Commit(sh.NewAnnotation().
							Creator(fmt.Sprintf("writer-%d", g)).Date("2026-08-08").
							Body(fmt.Sprintf("durable commit %d", i)).Refer(m)); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
