// Package graphitti is an annotation management system for heterogeneous
// scientific objects, reproducing Gupta, Condit & Gupta, "Graphitti: An
// Annotation Management System for Heterogeneous Objects" (ICDE 2008).
//
// Graphitti treats an annotation as a linker object connecting an XML
// content document (Dublin Core plus user-defined tags) to one or more
// referents — marked sub-structures of heterogeneous data objects: DNA/RNA/
// protein sequence intervals, image regions registered to shared
// coordinate systems, phylogenetic-tree clades, interaction-graph
// subgraphs, alignment blocks and relational record sets — and to ontology
// terms. Contents and referents induce the a-graph, a directed labeled
// multigraph acting as a general-purpose labeled join index; annotations
// sharing a referent become indirectly related.
//
// The root package is a facade over the internal engine:
//
//	store := graphitti.New()
//	seq, _ := graphitti.NewDNA("NC_007362", "ACGT...")
//	store.RegisterSequence(seq)
//	mark, _ := store.MarkSequenceInterval("NC_007362", graphitti.Span(100, 240))
//	store.Commit(store.NewAnnotation().
//	        Creator("gupta").Date("2007-11-02").
//	        Body("protease cleavage site").Refer(mark))
//
// Queries run either through the compositional API (SearchContents,
// ReferentsOverlapping, RelatedAnnotations, …) or through the SPARQL-like
// graph query language (NewProcessor / Execute; see package
// internal/query). The two queries demonstrated in the paper are available
// directly as QueryTP53Images (the intro's "protein.TP53 … Deep Cerebellar
// nuclei" query) and QueryConsecutiveKeyword (the query tab's "4
// consecutive non-overlapping protease intervals").
package graphitti

import (
	"io"

	"graphitti/internal/agraph"
	"graphitti/internal/biodata/imaging"
	"graphitti/internal/biodata/interact"
	"graphitti/internal/biodata/msa"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/core"
	"graphitti/internal/interval"
	"graphitti/internal/ontology"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/query"
	"graphitti/internal/rtree"
)

// Core model re-exports.
type (
	// Store is the annotation management system.
	Store = core.Store
	// View is an immutable snapshot of a store: Store.View() pins one,
	// and every read method runs lock-free against it. Pin a view when
	// several reads must observe the same consistent state.
	View = core.View
	// Annotation is a committed linker object.
	Annotation = core.Annotation
	// Builder assembles an annotation for Commit.
	Builder = core.Builder
	// Referent is a marked sub-structure.
	Referent = core.Referent
	// TermRef points at an ontology term.
	TermRef = core.TermRef
	// ObjectType names a registered data type.
	ObjectType = core.ObjectType
	// Stats summarises store contents.
	Stats = core.Stats
	// CorrelatedItem is an entry of the correlated-data view.
	CorrelatedItem = core.CorrelatedItem

	// Interval is a half-open 1-D range.
	Interval = interval.Interval
	// Rect is an axis-aligned 2-D/3-D box.
	Rect = rtree.Rect

	// Sequence is a DNA/RNA/protein sequence.
	Sequence = seq.Sequence
	// Alignment is a multiple sequence alignment.
	Alignment = msa.Alignment
	// PhyloTree is a phylogenetic tree.
	PhyloTree = phylo.Tree
	// InteractionGraph is a molecular interaction graph.
	InteractionGraph = interact.Graph
	// Image is a registered image.
	Image = imaging.Image
	// CoordinateSystem is a shared spatial reference.
	CoordinateSystem = imaging.CoordinateSystem
	// Ontology is a term graph.
	Ontology = ontology.Ontology

	// Rule is a propagation rule: a trigger selecting source annotations
	// plus an edge (overlap, coregistered, closure, shared-referent)
	// producing derived annotations.
	Rule = prop.Rule
	// PropagationEngine maintains derived annotations incrementally.
	PropagationEngine = prop.Engine
	// DerivedFact is one materialized derived annotation with provenance.
	DerivedFact = core.DerivedFact

	// Processor executes the graph query language.
	Processor = query.Processor
	// QueryOptions tune query execution.
	QueryOptions = query.Options
	// QueryResult is a query outcome.
	QueryResult = query.Result
	// Subgraph is a connection subgraph.
	Subgraph = agraph.Subgraph
	// Path is an a-graph path.
	Path = agraph.Path
	// NodeRef identifies an a-graph node.
	NodeRef = agraph.NodeRef
)

// Object types of the demonstration studies.
const (
	TypeDNA         = core.TypeDNA
	TypeRNA         = core.TypeRNA
	TypeProtein     = core.TypeProtein
	TypeAlignment   = core.TypeAlignment
	TypeTree        = core.TypeTree
	TypeInteraction = core.TypeInteraction
	TypeImage       = core.TypeImage
	TypeRecord      = core.TypeRecord
)

// The propagation edges (see internal/prop).
const (
	EdgeOverlap         = prop.EdgeOverlap
	EdgeCoRegistered    = prop.EdgeCoRegistered
	EdgeOntologyClosure = prop.EdgeOntologyClosure
	EdgeSharedReferent  = prop.EdgeSharedReferent
)

// New returns an empty Graphitti store.
func New() *Store { return core.NewStore() }

// AddRule registers a propagation rule on the store (attaching the
// propagation engine on first use) and materializes its derived
// annotations. Subsequent commits and deletes maintain them
// incrementally.
func AddRule(s *Store, r Rule) error { return prop.Attach(s).AddRule(r) }

// DeleteRule removes a propagation rule and every fact it derived.
func DeleteRule(s *Store, id string) error { return prop.Attach(s).DeleteRule(id) }

// Rules returns the store's propagation rules, sorted by ID.
func Rules(s *Store) []Rule { return prop.RulesOf(s) }

// DerivedFrom returns the derived annotations sourced at the given
// annotation — what it propagated onto, with rule and witness.
func DerivedFrom(s *Store, annID uint64) []DerivedFact { return s.DerivedFrom(annID) }

// ProvenanceOf traces the derived annotations targeting the given
// annotation — its content node or any of its referents — back to their
// sources: which rule, which source annotation, and through what edge.
// The error distinguishes a nonexistent annotation from one with no
// provenance.
func ProvenanceOf(s *Store, annID uint64) ([]DerivedFact, error) {
	return s.DerivedOnto(annID)
}

// NewProcessor returns a query processor bound to a store.
func NewProcessor(s *Store) *Processor { return query.NewProcessor(s) }

// DefaultQueryOptions enable selectivity-ordered planning.
var DefaultQueryOptions = query.DefaultOptions

// Span returns the half-open interval [lo, hi).
func Span(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Rect2D returns a 2-D rectangle.
func Rect2D(x0, y0, x1, y1 float64) Rect { return rtree.Rect2D(x0, y0, x1, y1) }

// Rect3D returns a 3-D box.
func Rect3D(x0, y0, z0, x1, y1, z1 float64) Rect {
	return rtree.Rect3D(x0, y0, z0, x1, y1, z1)
}

// NewDNA validates and returns a DNA sequence.
func NewDNA(id, residues string) (*Sequence, error) { return seq.New(id, seq.DNA, residues) }

// NewRNA validates and returns an RNA sequence.
func NewRNA(id, residues string) (*Sequence, error) { return seq.New(id, seq.RNA, residues) }

// NewProtein validates and returns a protein sequence.
func NewProtein(id, residues string) (*Sequence, error) {
	return seq.New(id, seq.Protein, residues)
}

// NewOntology returns an empty named ontology.
func NewOntology(name string) *Ontology { return ontology.New(name) }

// ParseNewick parses a phylogenetic tree from Newick text.
func ParseNewick(id, src string) (*PhyloTree, error) { return phylo.ParseNewick(id, src) }

// NewInteractionGraph returns an empty interaction graph.
func NewInteractionGraph(id string) *InteractionGraph { return interact.NewGraph(id) }

// NewAlignment validates and returns a multiple sequence alignment.
func NewAlignment(id string, rowIDs, rows []string) (*Alignment, error) {
	return msa.New(id, rowIDs, rows)
}

// NewCoordinateSystem validates and returns a coordinate system.
func NewCoordinateSystem(name string, bounds Rect) (*CoordinateSystem, error) {
	return imaging.NewCoordinateSystem(name, bounds)
}

// NewImage validates and returns an image registered into a coordinate
// system by the given affine registration.
func NewImage(id, system string, local Rect, reg imaging.Registration) (*Image, error) {
	return imaging.NewImage(id, system, local, reg)
}

// IdentityRegistration maps image-local coordinates 1:1 into the system.
func IdentityRegistration(dims int) imaging.Registration { return imaging.Identity(dims) }

// Save writes the store as a portable JSON snapshot. Load rebuilds a store
// by replaying the snapshot through the normal registration and commit
// pipeline (see internal/persist).
func Save(s *Store, w io.Writer) error { return persist.Write(s, w) }

// Load rebuilds a store from a snapshot produced by Save.
func Load(r io.Reader) (*Store, error) { return persist.Read(r) }
