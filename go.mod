module graphitti

go 1.24
