package graphitti

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"graphitti/internal/biodata/imaging"
	"graphitti/internal/core"
	"graphitti/internal/durable"
	"graphitti/internal/rtree"
	"graphitti/internal/workload"
)

// BenchmarkW1DurableCommit measures logged-commit throughput against
// in-memory commit at 8 concurrent writers — the cost of durability. The
// durable mode fdatasyncs every acknowledged commit; group commit batches
// the concurrent writers into shared syncs, which is what keeps the
// logged path within a small factor of memory speed. durable-nosync
// isolates the logging/encoding overhead from the sync itself.
func BenchmarkW1DurableCommit(b *testing.B) {
	const writers = 8

	modes := []struct {
		name string
		open func(b *testing.B) workload.Sink
	}{
		{"inmemory", func(b *testing.B) workload.Sink { return workload.AsSink(core.NewStore()) }},
		{"durable", func(b *testing.B) workload.Sink {
			s, err := durable.Open(b.TempDir(), durable.Options{CompactThreshold: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { s.Close() })
			return s
		}},
		{"durable-nosync", func(b *testing.B) workload.Sink {
			s, err := durable.Open(b.TempDir(), durable.Options{CompactThreshold: -1, NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { s.Close() })
			return s
		}},
	}

	for _, mode := range modes {
		b.Run(fmt.Sprintf("%s/writers=%d", mode.name, writers), func(b *testing.B) {
			s := mode.open(b)
			cs, err := imaging.NewCoordinateSystem("atlas", rtree.Rect2D(0, 0, 10_000, 10_000))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.RegisterCoordinateSystem(cs); err != nil {
				b.Fatal(err)
			}
			im, err := imaging.NewImage("img-0", "atlas", rtree.Rect2D(0, 0, 1000, 1000), imaging.Identity(2))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.RegisterImage(im); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			var next int64
			var wg sync.WaitGroup
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1)
						if i > int64(b.N) {
							return
						}
						x := float64(i % 900)
						y := float64((i / 900) % 900)
						m, err := s.MarkImageRegion("img-0", rtree.Rect2D(x, y, x+7, y+7))
						if err != nil {
							b.Error(err)
							return
						}
						_, err = s.Commit(s.NewAnnotation().
							Creator(fmt.Sprintf("writer-%d", g)).
							Date("2026-07-29").
							Body(fmt.Sprintf("durable commit %d", i)).
							Refer(m))
						if err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
