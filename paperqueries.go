package graphitti

import (
	"fmt"
	"sort"

	"graphitti/internal/agraph"
	"graphitti/internal/core"
)

// This file implements the two queries the paper spells out, as reusable
// library calls. Both compose the engine's primitives exactly the way the
// query processor does: per-type sub-queries first, then joins along the
// a-graph.

// TP53Options parameterises QueryTP53Images (the paper's intro query). The
// zero value uses the paper's constants.
type TP53Options struct {
	// Keyword defaults to "protein.TP53".
	Keyword string
	// Ontology and TermName locate the region term; they default to "nif"
	// and "Deep Cerebellar nuclei".
	Ontology string
	TermName string
	// MinRegions defaults to 2.
	MinRegions int
}

func (o *TP53Options) defaults() {
	if o.Keyword == "" {
		o.Keyword = "protein.TP53"
	}
	if o.Ontology == "" {
		o.Ontology = "nif"
	}
	if o.TermName == "" {
		o.TermName = "Deep Cerebellar nuclei"
	}
	if o.MinRegions == 0 {
		o.MinRegions = 2
	}
}

// TP53Result reports the intro query's answer together with the witnesses.
type TP53Result struct {
	// Annotations contain the keyword and have a-graph paths to every
	// qualifying image.
	Annotations []*Annotation
	// QualifyingImages had at least MinRegions regions annotated with the
	// term.
	QualifyingImages []string
	// RegionCounts maps every inspected image to its matching-region
	// count.
	RegionCounts map[string]int
}

// QueryTP53Images implements the paper's §I query: "Find annotations that
// contain the term 'protein.TP53' and have paths to all mouse brain images
// having at least 2 regions annotated with ontology term 'Deep Cerebellar
// nuclei'."
//
// The whole query runs against one pinned store view: the three
// sub-queries read a single table/index snapshot, lock-free, regardless
// of concurrent annotation traffic (graph-join steps consult the shared
// a-graph handle; see the core.View contract).
func QueryTP53Images(st *Store, opts TP53Options) (*TP53Result, error) {
	opts.defaults()
	s := st.View()

	// Sub-query 1 (ontology): resolve the term and its CI closure.
	ont, err := s.Ontology(opts.Ontology)
	if err != nil {
		return nil, err
	}
	term, ok := ont.TermByName(opts.TermName)
	if !ok {
		return nil, fmt.Errorf("graphitti: term %q not in ontology %s", opts.TermName, opts.Ontology)
	}
	closure := map[string]bool{term.ID: true}
	if ci, err := ont.CI(term.ID); err == nil {
		for _, t := range ci {
			closure[t] = true
		}
	}

	// Sub-query 2 (images x regions): count, per image, the region
	// referents whose annotations point into the term closure.
	res := &TP53Result{RegionCounts: make(map[string]int)}
	for _, imgID := range s.Images() {
		count := 0
		// referents marking this image:
		s.Graph().InEach(agraph.Object(string(TypeImage), imgID), func(e agraph.Edge) bool {
			refID, ok := agraph.ReferentID(e.From)
			if !ok {
				return true
			}
			ref, err := s.Referent(refID)
			if err != nil || ref.Kind != core.RegionReferent {
				return true
			}
			// does any annotation of this referent carry the term? Walk
			// the annotates in-edges zero-copy instead of materialising
			// (and sorting) the annotation list per referent.
			found := false
			s.Graph().InEach(e.From, func(ae agraph.Edge) bool {
				annID, ok := contentRootID(ae.From)
				if !ok {
					return true
				}
				ann, err := s.Annotation(annID)
				if err != nil {
					return true // committed after this view was pinned
				}
				for _, tr := range ann.Terms {
					if tr.Ontology == opts.Ontology && closure[tr.TermID] {
						found = true
						return false
					}
				}
				return true
			}, agraph.LabelAnnotates)
			if found {
				count++
			}
			return true
		}, agraph.LabelMarks)
		res.RegionCounts[imgID] = count
		if count >= opts.MinRegions {
			res.QualifyingImages = append(res.QualifyingImages, imgID)
		}
	}
	sort.Strings(res.QualifyingImages)

	// Sub-query 3 (contents): keyword candidates.
	candidates := s.SearchKeyword(opts.Keyword, true)

	// Join: keep candidates with a path to every qualifying image. A path
	// exists iff the two nodes share an undirected component, so instead
	// of one whole-graph BFS per (candidate, image) pair, traverse each
	// component containing a qualifying image once and record which
	// annotation roots it holds. Qualifying images discovered during an
	// earlier image's traversal share its component and skip their own.
	if len(res.QualifyingImages) == 0 {
		// No qualifying images: "has paths to all qualifying images" is
		// vacuously true, so every keyword candidate answers the query.
		res.Annotations = append(res.Annotations, candidates...)
	} else if len(candidates) > 0 {
		imgNodes := make([]agraph.NodeRef, len(res.QualifyingImages))
		qualifying := make(map[agraph.NodeRef]bool, len(imgNodes))
		for i, imgID := range res.QualifyingImages {
			imgNodes[i] = agraph.Object(string(TypeImage), imgID)
			qualifying[imgNodes[i]] = true
		}
		imgComp := make(map[agraph.NodeRef]int, len(imgNodes))
		var compAnns []map[uint64]bool
		for _, node := range imgNodes {
			if _, done := imgComp[node]; done {
				continue
			}
			anns := make(map[uint64]bool)
			ci := len(compAnns)
			err := s.Graph().ReachableEach(node, func(n agraph.NodeRef) bool {
				switch n.Kind {
				case agraph.ContentNode:
					if id, ok := contentRootID(n); ok {
						anns[id] = true
					}
				case agraph.ObjectNode:
					if qualifying[n] { // other qualifying images share this component
						imgComp[n] = ci
					}
				}
				return true
			})
			if err != nil {
				continue // image node absent from the graph: nothing reaches it
			}
			compAnns = append(compAnns, anns)
		}
		for _, ann := range candidates {
			hasAll := true
			for _, node := range imgNodes {
				ci, ok := imgComp[node]
				if !ok || !compAnns[ci][ann.ID] {
					hasAll = false
					break
				}
			}
			if hasAll {
				res.Annotations = append(res.Annotations, ann)
			}
		}
	}
	sort.Slice(res.Annotations, func(i, j int) bool { return res.Annotations[i].ID < res.Annotations[j].ID })
	return res, nil
}

// contentRootID parses the annotation ID out of a content-root node ref
// (XML node 1).
func contentRootID(ref agraph.NodeRef) (uint64, bool) {
	ann, node, ok := agraph.ContentID(ref)
	return ann, ok && node == 1
}

// Chain is one answer of QueryConsecutiveKeyword: k consecutive disjoint
// interval referents on one domain, each carrying the keyword, plus the
// sequences that own them.
type Chain struct {
	Domain    string
	Referents []*Referent
	// Sequences are the distinct owning sequence IDs, sorted.
	Sequences []string
	// Annotations holds one witnessing annotation per link.
	Annotations []*Annotation
}

// ConsecutiveOptions parameterises QueryConsecutiveKeyword. The zero value
// uses the paper's constants (k=4, keyword "protease").
type ConsecutiveOptions struct {
	Keyword string
	K       int
	// Ontology/ClassTerm optionally restrict to sequences whose
	// annotations reference the class (the paper's "all proteins
	// belonging to an ontological class").
	Ontology  string
	ClassTerm string
}

func (o *ConsecutiveOptions) defaults() {
	if o.Keyword == "" {
		o.Keyword = "protease"
	}
	if o.K == 0 {
		o.K = 4
	}
}

// QueryConsecutiveKeyword implements the paper's §III query-tab query:
// "find annotated sequences of all proteins belonging to an ontological
// class, where 4 consecutive non-overlapping intervals in the sequence has
// annotations having the keyword 'protease' in each of them."
func QueryConsecutiveKeyword(st *Store, opts ConsecutiveOptions) ([]*Chain, error) {
	opts.defaults()
	s := st.View() // one pinned snapshot for both sub-queries

	// Sub-query 1 (contents): annotations carrying the keyword, and the
	// interval referents they annotate, grouped by domain.
	anns := s.SearchKeyword(opts.Keyword, true)
	witness := make(map[uint64]*Annotation) // referent -> one annotation
	perDomain := make(map[string][]*Referent)
	for _, ann := range anns {
		if opts.Ontology != "" && !annotationInClass(s, ann, opts.Ontology, opts.ClassTerm) {
			continue
		}
		for _, refID := range ann.ReferentIDs {
			ref, err := s.Referent(refID)
			if err != nil || ref.Kind != core.IntervalReferent {
				continue
			}
			if _, dup := witness[refID]; !dup {
				witness[refID] = ann
				perDomain[ref.Domain] = append(perDomain[ref.Domain], ref)
			}
		}
	}

	// Sub-query 2 (interval algebra): in each domain, find maximal runs of
	// K consecutive, pairwise-disjoint marks.
	var chains []*Chain
	domains := make([]string, 0, len(perDomain))
	for d := range perDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, domain := range domains {
		refs := perDomain[domain]
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].Interval.Lo != refs[j].Interval.Lo {
				return refs[i].Interval.Lo < refs[j].Interval.Lo
			}
			return refs[i].Interval.Hi < refs[j].Interval.Hi
		})
		for start := 0; start+opts.K <= len(refs); start++ {
			run := []*Referent{refs[start]}
			last := refs[start].Interval
			for next := start + 1; next < len(refs) && len(run) < opts.K; next++ {
				iv := refs[next].Interval
				if iv.Lo >= last.Hi {
					run = append(run, refs[next])
					last = iv
				}
			}
			if len(run) == opts.K {
				chains = append(chains, buildChain(s, domain, run, witness))
			}
		}
	}
	return dedupChains(chains), nil
}

func buildChain(s *core.View, domain string, run []*Referent, witness map[uint64]*Annotation) *Chain {
	c := &Chain{Domain: domain}
	seqSet := make(map[string]bool)
	for _, r := range run {
		c.Referents = append(c.Referents, r)
		seqSet[r.ObjectID] = true
		if ann := witness[r.ID]; ann != nil {
			c.Annotations = append(c.Annotations, ann)
		}
	}
	for id := range seqSet {
		c.Sequences = append(c.Sequences, id)
	}
	sort.Strings(c.Sequences)
	return c
}

func dedupChains(chains []*Chain) []*Chain {
	seen := make(map[string]bool)
	var out []*Chain
	for _, c := range chains {
		key := c.Domain
		for _, r := range c.Referents {
			key += fmt.Sprintf("|%d", r.ID)
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

func annotationInClass(s *core.View, ann *Annotation, ontName, classTerm string) bool {
	ont, err := s.Ontology(ontName)
	if err != nil {
		return false
	}
	closure := map[string]bool{classTerm: true}
	if ci, err := ont.CI(classTerm); err == nil {
		for _, t := range ci {
			closure[t] = true
		}
	}
	for _, tr := range ann.Terms {
		if tr.Ontology == ontName && closure[tr.TermID] {
			return true
		}
	}
	return false
}

// MarkAndAnnotate is a convenience that marks a sequence interval and
// commits a one-referent annotation in one call; the quickstart uses it.
func MarkAndAnnotate(s *Store, seqID string, iv Interval, creator, date, body string) (*Annotation, error) {
	m, err := s.MarkSequenceInterval(seqID, iv)
	if err != nil {
		return nil, err
	}
	return s.Commit(s.NewAnnotation().Creator(creator).Date(date).Body(body).Refer(m))
}
