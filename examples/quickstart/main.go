// Quickstart: register a sequence, annotate an interval, search.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"graphitti"
)

func main() {
	// 1. Create a store (in-memory; all tables and indexes are ready).
	store := graphitti.New()

	// 2. Register a data object — here a DNA sequence. Sequences carry the
	//    coordinate domain they live in; leaving it empty makes the
	//    sequence its own domain.
	dna, err := graphitti.NewDNA("NC_007362", strings.Repeat("ACGT", 500))
	if err != nil {
		log.Fatal(err)
	}
	dna.Description = "Influenza A virus (A/goose/Guangdong/1/96) segment 4"
	if err := store.RegisterSequence(dna); err != nil {
		log.Fatal(err)
	}

	// 3. Mark a sub-structure and commit an annotation pointing at it.
	mark, err := store.MarkSequenceInterval("NC_007362", graphitti.Span(100, 240))
	if err != nil {
		log.Fatal(err)
	}
	ann, err := store.Commit(store.NewAnnotation().
		Creator("gupta").
		Date("2007-11-02").
		Title("protease site").
		Body("The protease cleavage site overlaps this window.").
		Tag("confidence", "high").
		Refer(mark))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed annotation %d; content document:\n\n%s\n", ann.ID, ann.Content.String())

	// 4. Search annotation contents with a path-expression query.
	hits, err := store.SearchContents("contains(/annotation/body, 'protease')")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("content search matched %d annotation(s)\n", len(hits))

	// 5. Spatial retrieval: which marks contain position 150?
	refs := store.ReferentsAt(dna.Domain, 150)
	for _, r := range refs {
		fmt.Printf("referent at position 150: %v\n", r)
	}

	// 6. Admin view.
	st := store.Stats()
	fmt.Printf("store: %d annotation(s), %d referent(s), %d interval tree(s)\n",
		st.Annotations, st.Referents, st.IntervalTrees)
}
