// Neuroscience: the paper's brain-imaging study and the §I intro query.
//
// Builds mouse-brain images registered into one shared coordinate system
// (so regions from different images land in one R-tree), annotates regions
// with NIF-style ontology terms, and answers the paper's intro query:
//
//	"Find annotations that contain the term 'protein.TP53' and have paths
//	 to all mouse brain images having at least 2 regions annotated with
//	 ontology term 'Deep Cerebellar nuclei'."
//
//	go run ./examples/neuroscience
package main

import (
	"fmt"
	"log"

	"graphitti"
	"graphitti/internal/workload"
)

func main() {
	study, err := workload.Neuroscience(workload.DefaultNeuro)
	if err != nil {
		log.Fatal(err)
	}
	s := study.Store

	st := s.Stats()
	fmt.Printf("study: %d images in one coordinate system, %d R-tree(s), %d annotations\n\n",
		st.Images, st.RTrees, st.Annotations)

	// Cross-image spatial query: all region marks in a window of the
	// shared atlas, regardless of which image they came from.
	window := graphitti.Rect2D(2000, 2000, 4000, 4000)
	regions := s.RegionsOverlapping(study.System, window)
	fmt.Printf("region marks overlapping atlas window %v: %d\n", window, len(regions))
	byImage := map[string]int{}
	for _, r := range regions {
		byImage[r.ObjectID]++
	}
	for img, n := range byImage {
		fmt.Printf("  %s: %d\n", img, n)
	}
	fmt.Println()

	// The intro query.
	res, err := graphitti.QueryTP53Images(s, graphitti.TP53Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1: protein.TP53 annotations with paths to all qualifying images")
	fmt.Printf("images with >= 2 'Deep Cerebellar nuclei' regions: %d\n", len(res.QualifyingImages))
	for _, img := range res.QualifyingImages {
		fmt.Printf("  %s (%d regions)\n", img, res.RegionCounts[img])
	}
	fmt.Printf("answer annotations: %d\n", len(res.Annotations))
	for _, ann := range res.Annotations {
		fmt.Printf("  annotation %d: %s\n", ann.ID, ann.DC.First("title"))
	}
	fmt.Println()

	// Ontology-expanded retrieval: asking at the cerebellum level catches
	// deep-cerebellar-nuclei annotations through the CI closure.
	exact := s.AnnotationsWithTerm("nif", "cerebellum")
	expanded, err := s.AnnotationsWithTermUnder("nif", "cerebellum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotations tagged exactly 'cerebellum': %d\n", len(exact))
	fmt.Printf("annotations tagged cerebellum-or-below:  %d (CI closure)\n", len(expanded))

	// Correlated-data view of the first TP53 answer.
	if len(res.Annotations) > 0 {
		items, err := s.CorrelatedData(res.Annotations[0].ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncorrelated data of annotation %d (first 8 items):\n", res.Annotations[0].ID)
		for i, it := range items {
			if i == 8 {
				fmt.Printf("  ... and %d more\n", len(items)-8)
				break
			}
			fmt.Printf("  [%s] %s\n", it.Label, it.Description)
		}
	}
}
