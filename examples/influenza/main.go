// Influenza: the paper's virology demonstration study end to end.
//
// Reproduces the Figure 2 annotation-tab workflow (marking sub-structures
// of all six demo data types), the Figure 1 a-graph scenario (indirect
// relations through shared referents), and the Figure 3 / §III query-tab
// query (4 consecutive disjoint protease intervals).
//
//	go run ./examples/influenza
package main

import (
	"fmt"
	"log"
	"strings"

	"graphitti"
	"graphitti/internal/workload"
)

func main() {
	// Generate the synthetic Avian-Influenza study: DNA sequences on
	// shared segment domains, an alignment, a phylogeny, the NS1
	// interactome, isolate records, an enzyme ontology, and a few hundred
	// annotations including planted protease chains.
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 300
	study, err := workload.Influenza(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := study.Store

	fmt.Println("=== admin view (paper's third tab) ===")
	st := s.Stats()
	fmt.Printf("sequences=%d alignments=%d trees=%d interaction-graphs=%d\n",
		st.Sequences, st.Alignments, st.Trees, st.InteractionGraphs)
	fmt.Printf("annotations=%d referents=%d interval-trees=%d (one per segment)\n",
		st.Annotations, st.Referents, st.IntervalTrees)
	fmt.Printf("a-graph: %d nodes, %d edges\n\n", st.GraphNodes, st.GraphEdges)

	// --- Fig. 2: the annotation-tab workflow across data types ---
	fmt.Println("=== annotation tab: marking heterogeneous sub-structures ===")

	// A clade of the phylogeny.
	clade, err := s.MarkClade(study.TreeID, "duck", "chicken")
	if err != nil {
		log.Fatal(err)
	}
	// A subgraph of the interactome.
	subgraph, err := s.MarkSubgraph(study.GraphID, "NS1", "PKR", "EIF2A")
	if err != nil {
		log.Fatal(err)
	}
	// One annotation linking BOTH referents — a cross-type annotation, the
	// heart of the heterogeneous model.
	ann, err := s.Commit(s.NewAnnotation().
		Creator("condit").
		Date("2007-11-20").
		Title("host-range correlation").
		Body("The avian clade correlates with the NS1-PKR inhibition module.").
		Refer(clade).
		Refer(subgraph).
		OntologyRef("go", "protease"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-type annotation %d commits a clade AND an interaction subgraph:\n%s\n",
		ann.ID, ann.Content.String())

	// --- Fig. 1: indirect relations through a shared referent ---
	fmt.Println("=== a-graph: indirect relations (Fig. 1) ===")
	m1, err := s.MarkDomainInterval("segment1", graphitti.Span(700, 800))
	if err != nil {
		log.Fatal(err)
	}
	first, err := s.Commit(s.NewAnnotation().Creator("gupta").Date("2007-11-21").
		Title("breakpoint?").Body("possible reassortment breakpoint").Refer(m1))
	if err != nil {
		log.Fatal(err)
	}
	m2, err := s.MarkDomainInterval("segment1", graphitti.Span(700, 800))
	if err != nil {
		log.Fatal(err)
	}
	second, err := s.Commit(s.NewAnnotation().Creator("martone").Date("2007-11-22").
		Title("confirmed").Body("agree; coverage supports the breakpoint").Refer(m2))
	if err != nil {
		log.Fatal(err)
	}
	related, err := s.RelatedAnnotations(first.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annotation %d (gupta) is indirectly related to:\n", first.ID)
	for _, r := range related {
		fmt.Printf("  annotation %d by %s (%q)\n", r.ID, r.DC.First("creator"), r.DC.First("title"))
	}
	path, err := s.PathBetweenAnnotations(first.ID, second.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a-graph path between them has %d edges (content-referent-content)\n\n", path.Len())

	// --- §III / Fig. 3: the query-tab query ---
	fmt.Println("=== query tab: 4 consecutive disjoint protease intervals (Q2) ===")
	chains, err := graphitti.QueryConsecutiveKeyword(s, graphitti.ConsecutiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range chains {
		fmt.Printf("chain %d on %s (sequences: %s)\n", i+1, c.Domain, strings.Join(c.Sequences, ", "))
		for _, r := range c.Referents {
			fmt.Printf("  interval %v\n", r.Interval)
		}
	}
	fmt.Println()

	// The same question through the graph query language.
	fmt.Println("=== the same through the SPARQL-like language ===")
	p := graphitti.NewProcessor(s)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation ; contains "protease" .
  ?t isa term ; ontology "go" ; under "protease" .
  ?a refersTo ?t .
}`, graphitti.DefaultQueryOptions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: bind %v; %d matches, %d candidate annotations / %d candidate terms\n",
		res.Stats.Order, res.Stats.Matches,
		res.Stats.CandidateCounts["a"], res.Stats.CandidateCounts["t"])
	fmt.Printf("%d annotation(s) reference a protease-family term AND contain the keyword\n",
		len(res.Annotations))
}
