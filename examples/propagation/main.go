// Propagation: rule-driven derived annotations with provenance.
//
// Annotations on one object implicitly annotate related objects — two
// marks on overlapping spans of the same chromosome are about the same
// region; a reference to "serine protease" is also a reference to
// "protease". Propagation rules materialize those implications as
// derived annotations, maintain them incrementally as annotations commit
// and delete, and record provenance so every derived fact can be walked
// back to its source.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"log"
	"strings"

	"graphitti"
)

func main() {
	store := graphitti.New()

	// A chromosome domain shared by one sequence, and a small ontology.
	dna, err := graphitti.NewDNA("NC_007362", strings.Repeat("ACGT", 500))
	if err != nil {
		log.Fatal(err)
	}
	dna.Domain = "segment4"
	if err := store.RegisterSequence(dna); err != nil {
		log.Fatal(err)
	}
	onto := graphitti.NewOntology("go")
	for _, term := range []string{"enzyme", "hydrolase", "protease", "serine-protease"} {
		if _, err := onto.AddTerm(term, term); err != nil {
			log.Fatal(err)
		}
	}
	for _, edge := range [][2]string{
		{"hydrolase", "enzyme"}, {"protease", "hydrolase"}, {"serine-protease", "protease"},
	} {
		if err := onto.AddEdge(edge[0], edge[1], "is_a", 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.RegisterOntology(onto); err != nil {
		log.Fatal(err)
	}

	// Two propagation rules: overlap within the segment4 domain, and
	// ontology closure over is_a.
	for _, rule := range []graphitti.Rule{
		{ID: "seg4-overlap", Edge: graphitti.EdgeOverlap, Domain: "segment4"},
		{ID: "go-closure", Edge: graphitti.EdgeOntologyClosure, Ontology: "go"},
	} {
		if err := graphitti.AddRule(store, rule); err != nil {
			log.Fatal(err)
		}
	}

	commit := func(lo, hi int64, body, term string) *graphitti.Annotation {
		mark, err := store.MarkDomainInterval("segment4", graphitti.Span(lo, hi))
		if err != nil {
			log.Fatal(err)
		}
		b := store.NewAnnotation().
			Creator("gupta").Date("2007-11-02").Body(body).Refer(mark)
		if term != "" {
			b.OntologyRef("go", term)
		}
		ann, err := store.Commit(b)
		if err != nil {
			log.Fatal(err)
		}
		return ann
	}

	// Rules are live: these commits maintain the derived table
	// incrementally, no batch step.
	a1 := commit(100, 240, "protease cleavage site", "serine-protease")
	a2 := commit(200, 300, "high conservation window", "")

	fmt.Printf("annotation %d derives:\n", a1.ID)
	for _, f := range graphitti.DerivedFrom(store, a1.ID) {
		fmt.Printf("  [%s] -> %s  (%s)\n", f.Rule, f.Target, f.Witness)
	}

	// Provenance walkthrough: what was derived ONTO annotation 2, and
	// from where? The witness names the edge that carried it.
	prov, err := graphitti.ProvenanceOf(store, a2.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance of annotation %d:\n", a2.ID)
	for _, f := range prov {
		fmt.Printf("  from annotation %d via rule %s (%s)\n", f.Source, f.Rule, f.Witness)
	}

	// Derived facts are first-class in the query language.
	proc := graphitti.NewProcessor(store)
	res, err := proc.Execute(`select contents where { ?a isa annotation ; derived "seg4-overlap" . }`,
		graphitti.DefaultQueryOptions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nannotations deriving via seg4-overlap: %d\n", len(res.Annotations))

	// Deleting a source deletes its derived facts atomically.
	if err := store.DeleteAnnotation(a1.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting annotation %d: %d derived facts remain\n",
		a1.ID, store.Stats().Derived)
}
