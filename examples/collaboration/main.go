// Collaboration: concurrent annotators building one a-graph.
//
// The paper motivates annotation as a collaboration medium: "scientists …
// often use annotations to share their opinions in a collaborative study".
// This example runs several annotators concurrently against one store,
// then explores the web of indirect relations and connection subgraphs
// their shared marks create.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"graphitti"
)

func main() {
	store := graphitti.New()

	// Shared substrate: one chromosome-scale domain, three sequences.
	for i := 0; i < 3; i++ {
		dna, err := graphitti.NewDNA(fmt.Sprintf("NC_%d", i), strings.Repeat("ACGT", 2500))
		if err != nil {
			log.Fatal(err)
		}
		dna.Domain = "chr1"
		dna.Offset = int64(i * 5000)
		if err := store.RegisterSequence(dna); err != nil {
			log.Fatal(err)
		}
	}
	ont := graphitti.NewOntology("lab")
	for _, term := range []string{"feature", "binding-site", "repeat"} {
		if _, err := ont.AddTerm(term, term); err != nil {
			log.Fatal(err)
		}
	}
	if err := ont.AddEdge("binding-site", "feature", "is_a", 0); err != nil {
		log.Fatal(err)
	}
	if err := ont.AddEdge("repeat", "feature", "is_a", 0); err != nil {
		log.Fatal(err)
	}
	if err := store.RegisterOntology(ont); err != nil {
		log.Fatal(err)
	}

	// Four annotators sweep the domain concurrently. Every annotator marks
	// the same hotspot [4000,4100) once — identical marks resolve to one
	// shared referent, relating everyone's work.
	annotators := []string{"ada", "grace", "edsger", "barbara"}
	var wg sync.WaitGroup
	errCh := make(chan error, len(annotators))
	for w, who := range annotators {
		wg.Add(1)
		go func(w int, who string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				lo := int64(w*3000 + i*110)
				m, err := store.MarkDomainInterval("chr1", graphitti.Span(lo, lo+90))
				if err != nil {
					errCh <- err
					return
				}
				term := "repeat"
				if i%3 == 0 {
					term = "binding-site"
				}
				if _, err := store.Commit(store.NewAnnotation().
					Creator(who).Date("2008-02-11").
					Title(fmt.Sprintf("%s sweep %d", who, i)).
					Body(fmt.Sprintf("feature candidate at offset %d", lo)).
					Refer(m).OntologyRef("lab", term)); err != nil {
					errCh <- err
					return
				}
			}
			// The shared hotspot.
			m, err := store.MarkDomainInterval("chr1", graphitti.Span(4000, 4100))
			if err != nil {
				errCh <- err
				return
			}
			if _, err := store.Commit(store.NewAnnotation().
				Creator(who).Date("2008-02-12").
				Title(who+" on the hotspot").
				Body("everyone sees something here").
				Refer(m).OntologyRef("lab", "binding-site")); err != nil {
				errCh <- err
				return
			}
		}(w, who)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		log.Fatal(err)
	}

	st := store.Stats()
	fmt.Printf("after concurrent annotation: %d annotations, %d referents (hotspot shared)\n",
		st.Annotations, st.Referents)

	// The hotspot's referent carries one annotation per annotator.
	hot := store.ReferentsAt("chr1", 4050)
	for _, r := range hot {
		anns := store.AnnotationsOfReferent(r.ID)
		if len(anns) < len(annotators) {
			continue
		}
		fmt.Printf("shared referent %d at %v carries %d annotations:\n", r.ID, r.Interval, len(anns))
		for _, a := range anns {
			fmt.Printf("  %d by %s\n", a.ID, a.DC.First("creator"))
		}
		// Connect all four annotators' hotspot annotations: the connection
		// subgraph is the star around the shared referent.
		ids := make([]uint64, len(anns))
		for i, a := range anns {
			ids[i] = a.ID
		}
		sg, err := store.ConnectAnnotations(ids...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("connection subgraph: %d nodes, %d edges, connected=%v\n",
			sg.NodeCount(), sg.EdgeCount(), sg.Connected())
	}

	// Who worked near whom? Ontology-expanded retrieval plus the keyword
	// index make cross-annotator review queries one-liners.
	bindingSites, err := store.AnnotationsWithTermUnder("lab", "feature")
	if err != nil {
		log.Fatal(err)
	}
	perCreator := map[string]int{}
	for _, a := range bindingSites {
		perCreator[a.DC.First("creator")]++
	}
	fmt.Println("annotations under 'feature' per annotator:")
	for _, who := range annotators {
		fmt.Printf("  %-8s %d\n", who, perCreator[who])
	}
}
