// Command graphitti-bench regenerates every experiment recorded in
// EXPERIMENTS.md (the per-figure/per-claim experiment index of DESIGN.md
// §5) and prints the measured rows as markdown tables. The same workloads
// back the testing.B benchmarks in bench_test.go; this harness exists so
// the experiment document can be reproduced with one command:
//
//	go run ./cmd/graphitti-bench [-quick]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"graphitti"
	"graphitti/internal/agraph"
	"graphitti/internal/durable"
	"graphitti/internal/interval"
	"graphitti/internal/obs"
	"graphitti/internal/ontology"
	"graphitti/internal/query"
	"graphitti/internal/rtree"
	"graphitti/internal/workload"
)

var (
	quick       = flag.Bool("quick", false, "smaller sweeps for a fast pass")
	metricsDump = flag.String("metrics-dump", "",
		"run the durable mixed workload plus the paper queries, then write the metric registry as flat CSV to this file (skips the experiment suites)")
)

func main() {
	flag.Parse()
	if *metricsDump != "" {
		if err := runMetricsDump(*metricsDump); err != nil {
			fmt.Fprintln(os.Stderr, "graphitti-bench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("# Graphitti experiment harness")
	fmt.Println()
	runF1()
	runF2()
	runF3()
	runQ1()
	runQ2()
	runO1()
	runO2()
	runO3()
	runA1()
	runA2()
	runA3()
	runA4()
	runA5()
	runA6()
	runA7()
}

// timeIt runs fn `iters` times and returns the mean duration.
func timeIt(iters int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

func fluSizes() []int {
	if *quick {
		return []int{200, 1000}
	}
	return []int{200, 1000, 5000}
}

func flu(anns int) *workload.InfluenzaStudy {
	cfg := workload.DefaultInfluenza
	cfg.Annotations = anns
	s, err := workload.Influenza(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func neuro(images int) *workload.NeuroStudy {
	cfg := workload.DefaultNeuro
	cfg.Images = images
	cfg.NoiseAnnotations = images * 5
	s, err := workload.Neuroscience(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func runF1() {
	fmt.Println("## F1 — Fig. 1 scenario: a-graph primitives vs store size")
	fmt.Println()
	fmt.Println("| annotations | graph nodes | graph edges | path | connect(3) |")
	fmt.Println("|---|---|---|---|---|")
	for _, n := range fluSizes() {
		study := flu(n)
		s := study.Store
		ids := study.AnnotationIDs
		st := s.Stats()
		path := timeIt(50, func() {
			_, _ = s.PathBetweenAnnotations(ids[0], ids[len(ids)/2])
		})
		conn := timeIt(20, func() {
			_, _ = s.ConnectAnnotations(ids[0], ids[len(ids)/3], ids[2*len(ids)/3])
		})
		fmt.Printf("| %d | %d | %d | %v | %v |\n", n, st.GraphNodes, st.GraphEdges, path, conn)
	}
	fmt.Println()
}

func runF2() {
	fmt.Println("## F2 — Fig. 2 workflow: mark+commit throughput per data type")
	fmt.Println()
	fmt.Println("| data type | mark+commit |")
	fmt.Println("|---|---|")
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 0
	cfg.ProteaseChains = 0
	study, err := workload.Influenza(cfg)
	if err != nil {
		panic(err)
	}
	s := study.Store
	i := 0
	row := func(name string, fn func() error) {
		d := timeIt(200, func() {
			if err := fn(); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %s | %v |\n", name, d)
	}
	row("sequence interval", func() error {
		i++
		m, err := s.MarkDomainInterval("segment1", graphitti.Span(int64(i%1500), int64(i%1500+30)))
		if err != nil {
			return err
		}
		_, err = s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(fmt.Sprintf("seq note %d", i)).Refer(m))
		return err
	})
	row("tree clade", func() error {
		i++
		m, err := s.MarkClade("H5N1-phylogeny", "duck", "chicken")
		if err != nil {
			return err
		}
		_, err = s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(fmt.Sprintf("clade note %d", i)).Refer(m))
		return err
	})
	row("interaction subgraph", func() error {
		i++
		m, err := s.MarkSubgraph("NS1-interactome", "NS1", "PKR")
		if err != nil {
			return err
		}
		_, err = s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(fmt.Sprintf("net note %d", i)).Refer(m))
		return err
	})
	row("alignment block", func() error {
		i++
		m, err := s.MarkAlignmentBlock("HA-alignment", []string{"NC_00000"},
			graphitti.Span(int64(i%40), int64(i%40+10)))
		if err != nil {
			return err
		}
		_, err = s.Commit(s.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(fmt.Sprintf("block note %d", i)).Refer(m))
		return err
	})
	n := neuro(4)
	i = 0
	row("image region", func() error {
		i++
		x := float64(i % 900)
		m, err := n.Store.MarkImageRegion(n.ImageIDs[i%len(n.ImageIDs)],
			graphitti.Rect2D(x, x, x+20, x+20))
		if err != nil {
			return err
		}
		_, err = n.Store.Commit(n.Store.NewAnnotation().Creator("u").Date("2008-01-01").
			Body(fmt.Sprintf("region note %d", i)).Refer(m))
		return err
	})
	fmt.Println()
}

func runF3() {
	fmt.Println("## F3 — Fig. 3 query tab: graph query + correlated data")
	fmt.Println()
	fmt.Println("| annotations | graph query | correlated view |")
	fmt.Println("|---|---|---|")
	q := query.MustParse(`
select graph
where {
  ?a isa annotation ; contains "protease" .
  ?r isa referent ; kind interval .
  ?o isa object ; type dna_sequences .
  ?a annotates ?r .
  ?r marks ?o .
}`)
	for _, n := range fluSizes() {
		study := flu(n)
		p := query.NewProcessor(study.Store)
		gq := timeIt(10, func() {
			if _, err := p.ExecuteParsed(q, query.DefaultOptions); err != nil {
				panic(err)
			}
		})
		ids := study.AnnotationIDs
		cd := timeIt(50, func() {
			if _, err := study.Store.CorrelatedData(ids[len(ids)/2]); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %d | %v | %v |\n", n, gq, cd)
	}
	fmt.Println()
}

func runQ1() {
	fmt.Println("## Q1 — intro query (protein.TP53 / Deep Cerebellar nuclei)")
	fmt.Println()
	fmt.Println("| images | qualifying | answers | latency |")
	fmt.Println("|---|---|---|---|")
	sizes := []int{12, 48, 96}
	if *quick {
		sizes = []int{12, 48}
	}
	for _, images := range sizes {
		study := neuro(images)
		var res *graphitti.TP53Result
		d := timeIt(10, func() {
			var err error
			res, err = graphitti.QueryTP53Images(study.Store, graphitti.TP53Options{})
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %d | %d | %d | %v |\n", images, len(res.QualifyingImages), len(res.Annotations), d)
	}
	fmt.Println()
}

func runQ2() {
	fmt.Println("## Q2 — query-tab query (4 consecutive disjoint protease intervals)")
	fmt.Println()
	fmt.Println("| annotations | chains found | latency |")
	fmt.Println("|---|---|---|")
	for _, n := range fluSizes() {
		study := flu(n)
		var chains []*graphitti.Chain
		d := timeIt(10, func() {
			var err error
			chains, err = graphitti.QueryConsecutiveKeyword(study.Store, graphitti.ConsecutiveOptions{})
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %d | %d | %v |\n", n, len(chains), d)
	}
	fmt.Println()
}

func runO1() {
	fmt.Println("## O1 — SUB_X operators")
	fmt.Println()
	fmt.Println("| operator | time |")
	fmt.Println("|---|---|")
	a := interval.Interval{Lo: 0, Hi: 100}
	r := rtree.Rect2D(0, 0, 100, 100)
	j := int64(0)
	fmt.Printf("| interval ifOverlap | %v |\n", timeIt(1_000_000, func() {
		j++
		_ = a.Overlaps(interval.Interval{Lo: j % 200, Hi: j%200 + 50})
	}))
	fmt.Printf("| interval intersect | %v |\n", timeIt(1_000_000, func() {
		j++
		_, _ = a.Intersect(interval.Interval{Lo: j % 200, Hi: j%200 + 50})
	}))
	fmt.Printf("| rect ifOverlap | %v |\n", timeIt(1_000_000, func() {
		j++
		x := float64(j % 200)
		_ = r.Overlaps(rtree.Rect2D(x, x, x+50, x+50))
	}))
	var tr interval.Tree[string]
	for i := 0; i < 10_000; i++ {
		lo := int64(i * 10)
		if err := tr.Insert(interval.Interval{Lo: lo, Hi: lo + 8}, uint64(i), "x"); err != nil {
			panic(err)
		}
	}
	fmt.Printf("| next (10k-entry tree) | %v |\n", timeIt(200_000, func() {
		j++
		lo := (j * 97) % 99_000
		_, _ = tr.Next(interval.Interval{Lo: lo, Hi: lo + 5})
	}))
	fmt.Println()
}

func runO2() {
	fmt.Println("## O2 — ontology operators (layered DAGs)")
	fmt.Println()
	fmt.Println("| terms | CI | CmRI | SubTree | SubTreeDiff | mCmRI |")
	fmt.Println("|---|---|---|---|---|---|")
	shapes := []struct{ depth, fanout int }{{4, 4}, {6, 4}}
	for _, sh := range shapes {
		o := workload.LayeredOntology("bench", sh.depth, sh.fanout, 1)
		ci, err := o.CI("root")
		if err != nil {
			panic(err)
		}
		y := ci[0]
		cs := []string{"root", ci[len(ci)/2]}
		fmt.Printf("| %d | %v | %v | %v | %v | %v |\n", o.Len(),
			timeIt(50, func() { _, _ = o.CI("root") }),
			timeIt(50, func() { _, _ = o.CmRI("root", []string{ontology.IsA, ontology.PartOf}) }),
			timeIt(50, func() { _, _ = o.SubTree("root", []string{ontology.IsA}) }),
			timeIt(50, func() { _, _ = o.SubTreeDiff("root", y, []string{ontology.IsA}) }),
			timeIt(50, func() { _, _ = o.MCmRI(cs, ontology.InstanceRelations) }),
		)
	}
	fmt.Println()
}

func benchGraph(stars, size int) (*agraph.Graph, []agraph.NodeRef) {
	g := agraph.New()
	hub := agraph.Object("hub", "0")
	var terms []agraph.NodeRef
	for s := 0; s < stars; s++ {
		c := agraph.ContentRoot(uint64(s))
		terms = append(terms, c)
		for i := 0; i < size; i++ {
			r := agraph.Referent(uint64(s*size + i))
			g.AddEdge(c, r, agraph.LabelAnnotates)
			if i == 0 {
				g.AddEdge(r, hub, agraph.LabelMarks)
			}
		}
	}
	return g, terms
}

func runO3() {
	fmt.Println("## O3 — a-graph primitives vs graph size")
	fmt.Println()
	fmt.Println("| nodes | path | connect(4) |")
	fmt.Println("|---|---|---|")
	sizes := []int{100, 1000, 10_000}
	if *quick {
		sizes = []int{100, 1000}
	}
	for _, size := range sizes {
		g, terms := benchGraph(6, size)
		fmt.Printf("| %d | %v | %v |\n", g.NodeCount(),
			timeIt(20, func() { _, _ = g.FindPath(terms[0], terms[1]) }),
			timeIt(10, func() { _, _ = g.Connect(terms[0], terms[1], terms[2], terms[3]) }),
		)
	}
	fmt.Println()
}

func runA1() {
	fmt.Println("## A1 — index consolidation (one tree per chromosome vs per sequence)")
	fmt.Println()
	const (
		domains, seqsPerDom, marksPerSeq = 8, 16, 64
		domainLength                     = 100_000
	)
	rng := rand.New(rand.NewSource(9))
	consolidated := map[string]*interval.Tree[string]{}
	fragmented := map[string]*interval.Tree[string]{}
	perDomainSeqs := map[string][]string{}
	id := uint64(0)
	for d := 0; d < domains; d++ {
		dom := fmt.Sprintf("chr%d", d)
		for q := 0; q < seqsPerDom; q++ {
			seqID := fmt.Sprintf("%s-seq%d", dom, q)
			perDomainSeqs[dom] = append(perDomainSeqs[dom], seqID)
			for m := 0; m < marksPerSeq; m++ {
				lo := rng.Int63n(domainLength - 200)
				iv := interval.Interval{Lo: lo, Hi: lo + 20 + rng.Int63n(180)}
				ct := consolidated[dom]
				if ct == nil {
					ct = &interval.Tree[string]{}
					consolidated[dom] = ct
				}
				ft := fragmented[seqID]
				if ft == nil {
					ft = &interval.Tree[string]{}
					fragmented[seqID] = ft
				}
				if err := ct.Insert(iv, id, seqID); err != nil {
					panic(err)
				}
				if err := ft.Insert(iv, id, seqID); err != nil {
					panic(err)
				}
				id++
			}
		}
	}
	j := 0
	cons := timeIt(2000, func() {
		j++
		dom := fmt.Sprintf("chr%d", j%domains)
		lo := int64((j * 911) % (domainLength - 500))
		consolidated[dom].CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 500})
	})
	frag := timeIt(2000, func() {
		j++
		dom := fmt.Sprintf("chr%d", j%domains)
		lo := int64((j * 911) % (domainLength - 500))
		q := interval.Interval{Lo: lo, Hi: lo + 500}
		for _, seqID := range perDomainSeqs[dom] {
			fragmented[seqID].CountOverlapping(q)
		}
	})
	fmt.Println("| design | index structures | overlap query |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| one tree per chromosome (paper) | %d | %v |\n", len(consolidated), cons)
	fmt.Printf("| one tree per annotated sequence | %d | %v |\n", len(fragmented), frag)
	fmt.Println()
}

func runA2() {
	fmt.Println("## A2 — interval tree vs naive scan")
	fmt.Println()
	fmt.Println("| N | tree | scan |")
	fmt.Println("|---|---|---|")
	sizes := []int{100, 1000, 10_000, 100_000}
	if *quick {
		sizes = []int{100, 1000, 10_000}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(3))
		var tr interval.Tree[int]
		var sc interval.Scan[int]
		for i := 0; i < n; i++ {
			lo := rng.Int63n(1_000_000)
			iv := interval.Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(500)}
			if err := tr.Insert(iv, uint64(i), i); err != nil {
				panic(err)
			}
			if err := sc.Insert(iv, uint64(i), i); err != nil {
				panic(err)
			}
		}
		j := 0
		tt := timeIt(2000, func() {
			j++
			lo := int64((j * 7919) % 999_000)
			tr.CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 300})
		})
		ts := timeIt(200, func() {
			j++
			lo := int64((j * 7919) % 999_000)
			sc.CountOverlapping(interval.Interval{Lo: lo, Hi: lo + 300})
		})
		fmt.Printf("| %d | %v | %v |\n", n, tt, ts)
	}
	fmt.Println()
}

func runA3() {
	fmt.Println("## A3 — R-tree vs naive scan")
	fmt.Println()
	fmt.Println("| N | R-tree | scan |")
	fmt.Println("|---|---|---|")
	sizes := []int{100, 1000, 10_000, 50_000}
	if *quick {
		sizes = []int{100, 1000, 10_000}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(5))
		tr, err := rtree.NewTree[int](2)
		if err != nil {
			panic(err)
		}
		sc, err := rtree.NewScan[int](2)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*10_000, rng.Float64()*10_000
			r := rtree.Rect2D(x, y, x+1+rng.Float64()*40, y+1+rng.Float64()*40)
			if err := tr.Insert(r, uint64(i), i); err != nil {
				panic(err)
			}
			if err := sc.Insert(r, uint64(i), i); err != nil {
				panic(err)
			}
		}
		j := 0
		tt := timeIt(2000, func() {
			j++
			x := float64((j * 7919) % 9900)
			tr.Count(rtree.Rect2D(x, x, x+100, x+100))
		})
		ts := timeIt(200, func() {
			j++
			x := float64((j * 7919) % 9900)
			sc.Count(rtree.Rect2D(x, x, x+100, x+100))
		})
		fmt.Printf("| %d | %v | %v |\n", n, tt, ts)
	}
	fmt.Println()
}

func runA4() {
	fmt.Println("## A4 — connect() strategies")
	fmt.Println()
	fmt.Println("| nodes | pairwise BFS | expanding ring |")
	fmt.Println("|---|---|---|")
	for _, size := range []int{200, 2000} {
		g, terms := benchGraph(8, size)
		pb := timeIt(20, func() {
			if _, err := g.ConnectWithStrategy(agraph.PairwiseBFS, terms...); err != nil {
				panic(err)
			}
		})
		er := timeIt(20, func() {
			if _, err := g.ConnectWithStrategy(agraph.ExpandingRing, terms...); err != nil {
				panic(err)
			}
		})
		fmt.Printf("| %d | %v | %v |\n", g.NodeCount(), pb, er)
	}
	fmt.Println()
}

func runA5() {
	fmt.Println("## A5 — planner sub-query ordering")
	fmt.Println()
	fmt.Println("| annotations | order | bindings tried | latency |")
	fmt.Println("|---|---|---|---|")
	q := query.MustParse(`
select contents
where {
  ?a isa annotation .
  ?r isa referent ; kind interval ; domain "segment1" ; overlaps [0, 120) .
  ?a annotates ?r .
}`)
	for _, n := range fluSizes() {
		study := flu(n)
		p := query.NewProcessor(study.Store)
		for _, ordered := range []bool{true, false} {
			var tried int
			d := timeIt(10, func() {
				res, err := p.ExecuteParsed(q, query.Options{OrderBySelectivity: ordered})
				if err != nil {
					panic(err)
				}
				tried = res.Stats.BindingsTried
			})
			name := "selectivity"
			if !ordered {
				name = "naive"
			}
			fmt.Printf("| %d | %s | %d | %v |\n", n, name, tried, d)
		}
	}
	fmt.Println()
}

func runA6() {
	fmt.Println("## A6 — content keyword index vs document scan")
	fmt.Println()
	fmt.Println("| annotations | indexed | scan |")
	fmt.Println("|---|---|---|")
	for _, n := range fluSizes() {
		study := flu(n)
		ti := timeIt(200, func() {
			if got := study.Store.SearchKeyword("protease", true); len(got) == 0 {
				panic("no hits")
			}
		})
		ts := timeIt(5, func() {
			if got := study.Store.SearchKeyword("protease", false); len(got) == 0 {
				panic("no hits")
			}
		})
		fmt.Printf("| %d | %v | %v |\n", n, ti, ts)
	}
	fmt.Println()
}

func runA7() {
	fmt.Println("## A7 — STR bulk load vs incremental R-tree construction")
	fmt.Println()
	fmt.Println("| N | build incremental | build STR | query incremental | query STR |")
	fmt.Println("|---|---|---|---|---|")
	sizes := []int{10_000, 50_000}
	if *quick {
		sizes = []int{10_000}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(11))
		entries := make([]rtree.Entry[int], n)
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*10_000, rng.Float64()*10_000
			entries[i] = rtree.Entry[int]{
				Rect: rtree.Rect2D(x, y, x+1+rng.Float64()*30, y+1+rng.Float64()*30),
				ID:   uint64(i), Value: i,
			}
		}
		buildInc := timeIt(3, func() {
			tr, _ := rtree.NewTree[int](2)
			for _, e := range entries {
				if err := tr.Insert(e.Rect, e.ID, e.Value); err != nil {
					panic(err)
				}
			}
		})
		buildStr := timeIt(3, func() {
			if _, err := rtree.BulkLoad(2, entries); err != nil {
				panic(err)
			}
		})
		inc, _ := rtree.NewTree[int](2)
		for _, e := range entries {
			_ = inc.Insert(e.Rect, e.ID, e.Value)
		}
		bulk, err := rtree.BulkLoad(2, entries)
		if err != nil {
			panic(err)
		}
		j := 0
		qInc := timeIt(2000, func() {
			j++
			x := float64((j * 7919) % 9900)
			inc.Count(rtree.Rect2D(x, x, x+80, x+80))
		})
		qStr := timeIt(2000, func() {
			j++
			x := float64((j * 7919) % 9900)
			bulk.Count(rtree.Rect2D(x, x, x+80, x+80))
		})
		fmt.Printf("| %d | %v | %v | %v | %v |\n", n, buildInc, buildStr, qInc, qStr)
	}
	fmt.Println()
}

// runMetricsDump exercises every instrumented layer — the durable mixed
// recovery stream (WAL, group commit, writer, propagation) followed by
// the paper's Q1 query and a content search — then flattens the process
// metric registry to CSV at path. scripts/bench.sh turns selected rows
// (commit latency quantiles, flush batching) into BENCH_*.json entries.
func runMetricsDump(path string) error {
	dir, err := os.MkdirTemp("", "graphitti-bench-metrics-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	d, err := durable.Open(dir, durable.Options{})
	if err != nil {
		return err
	}
	ops := workload.RecoveryScenario(workload.DefaultRecovery)
	for _, op := range ops {
		if err := op.Apply(d); err != nil {
			return fmt.Errorf("%s: %w", op.Name, err)
		}
	}
	q := query.MustParse(`
		select graph
		where {
		  ?a isa annotation ; contains "protein.TP53" .
		  ?r isa referent ; kind region .
		  ?a annotates ?r .
		}
	`)
	p := query.NewProcessor(d.Core())
	for i := 0; i < 20; i++ {
		if _, err := p.ExecuteParsed(q, query.DefaultOptions); err != nil {
			return err
		}
		if _, err := d.Core().View().SearchContents("TP53"); err != nil {
			return err
		}
	}
	if err := d.Close(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.Default.WriteCSV(f)
}
