package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphitti/internal/durable"
	"graphitti/internal/prop"
	"graphitti/internal/shard"
)

// TestGracefulShutdownClosesStore runs the real server loop against a
// durable directory, writes through the API, then cancels the context —
// the SIGINT/SIGTERM path — and checks the drain exits cleanly and the
// store was flushed and closed: a fresh Open replays the write.
func TestGracefulShutdownClosesStore(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan net.Addr, 1)
	cfg := serverConfig{
		addr:            "127.0.0.1:0",
		study:           "", // empty durable store, no demo seed
		dataDir:         dir,
		shutdownTimeout: 5 * time.Second,
		onListen:        func(a net.Addr) { addrCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, logger) }()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	// One durable op through the API; it must survive the shutdown.
	resp, err = http.Post(base+"/api/rules", "application/json",
		bytes.NewReader([]byte(`{"id":"ov","edge":"overlap","domain":"atlas"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add rule: %d", resp.StatusCode)
	}

	cancel() // the signal
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s")
	}

	d, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer d.Close()
	if st := d.Stats(); st.Seq != 1 || st.TornBytes != 0 {
		t.Fatalf("store not cleanly closed: %+v", st)
	}
}

// TestBuildHandlerUnknownStudy pins the config-error path of run's
// builder.
func TestBuildHandlerUnknownStudy(t *testing.T) {
	_, _, _, err := buildHandler(serverConfig{study: "no-such-study"})
	if err == nil {
		t.Fatal("unknown study accepted")
	}
}

// TestShardedDirSurvivesDefaultFlags pins the restart contract for a
// sharded data directory: rerunning the server with -shards left at its
// default must adopt the count SHARDS.json records and serve the shard
// data — not fall through to the unsharded path, which would serve an
// empty store and fork the directory with a second top-level WAL. An
// explicit mismatching -shards must refuse outright.
func TestShardedDirSurvivesDefaultFlags(t *testing.T) {
	dir := t.TempDir()
	sh, err := shard.Open(dir, 2, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.AddRule(prop.Rule{ID: "ov", Edge: "overlap", Domain: "atlas"}); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// The CLI default: -shards 1, not explicitly set.
	_, store, _, err := buildHandler(serverConfig{dataDir: dir, shards: 1})
	if err != nil {
		t.Fatalf("restart with default flags: %v", err)
	}
	s2, ok := store.(*shard.Store)
	if !ok {
		t.Fatalf("restart served a %T, want the sharded store", store)
	}
	if got := s2.NumShards(); got != 2 {
		t.Fatalf("adopted %d shards, want the directory's 2", got)
	}
	if got := len(s2.Rules()); got != 1 {
		t.Fatalf("recovered %d rules, want 1", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// An explicit -shards 1 over a 2-shard directory is a mismatch: the
	// open must refuse with shard.Open's count error, never fork.
	if _, _, _, err := buildHandler(serverConfig{dataDir: dir, shards: 1, shardsSet: true}); err == nil {
		t.Fatal("explicit -shards 1 over a 2-shard directory was accepted")
	}

	// A directory whose manifest was lost must refuse the unsharded path
	// too, instead of opening a fresh WAL beside the shard data.
	if err := os.Remove(filepath.Join(dir, "SHARDS.json")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildHandler(serverConfig{dataDir: dir, shards: 1}); err == nil {
		t.Fatal("manifest-less shard directory opened as an unsharded store")
	}
}
