package main

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"testing"
	"time"

	"graphitti/internal/durable"
)

// TestGracefulShutdownClosesStore runs the real server loop against a
// durable directory, writes through the API, then cancels the context —
// the SIGINT/SIGTERM path — and checks the drain exits cleanly and the
// store was flushed and closed: a fresh Open replays the write.
func TestGracefulShutdownClosesStore(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan net.Addr, 1)
	cfg := serverConfig{
		addr:            "127.0.0.1:0",
		study:           "", // empty durable store, no demo seed
		dataDir:         dir,
		shutdownTimeout: 5 * time.Second,
		onListen:        func(a net.Addr) { addrCh <- a },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, logger) }()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	// One durable op through the API; it must survive the shutdown.
	resp, err = http.Post(base+"/api/rules", "application/json",
		bytes.NewReader([]byte(`{"id":"ov","edge":"overlap","domain":"atlas"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add rule: %d", resp.StatusCode)
	}

	cancel() // the signal
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s")
	}

	d, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer d.Close()
	if st := d.Stats(); st.Seq != 1 || st.TornBytes != 0 {
		t.Fatalf("store not cleanly closed: %+v", st)
	}
}

// TestBuildHandlerUnknownStudy pins the config-error path of run's
// builder.
func TestBuildHandlerUnknownStudy(t *testing.T) {
	_, _, _, err := buildHandler(serverConfig{study: "no-such-study"})
	if err == nil {
		t.Fatal("unknown study accepted")
	}
}
