// Command graphitti-server serves a Graphitti store over HTTP/JSON — the
// service-shaped equivalent of the paper's demo GUI. By default it loads a
// generated demonstration study; pass -snapshot to serve a store exported
// with the persist format (e.g. from GET /api/snapshot), or -data-dir to
// run durably: every mutation is write-ahead logged and fdatasynced
// before it is acknowledged, and the directory is replayed on restart.
//
//	go run ./cmd/graphitti-server -addr :8080 -study influenza
//	go run ./cmd/graphitti-server -addr :8080 -data-dir ./data
//	curl localhost:8080/api/stats
//	curl -X POST localhost:8080/api/search -d '{"expr":"contains(/annotation/body, \"protease\")"}'
//
// In durable mode a -study or -snapshot seeds the directory only when it
// holds no prior state; an existing directory always wins.
//
// The server is production-shaped: read-header and idle timeouts bound
// slow clients, SIGINT/SIGTERM triggers a graceful drain (bounded by
// -shutdown-timeout) before the durable store is flushed and closed, and
// GET /healthz / GET /readyz report liveness and the store's
// healthy/degraded state for orchestrators. Startup and shutdown are
// logged structured (key=value) on stderr. GET /metrics exposes every
// internal counter in Prometheus text format (GET /debug/vars serves
// the same as JSON), every response carries an X-Request-Id, and -pprof
// mounts the profiling handlers. See docs/OPERATIONS.md for the full
// operator guide and docs/METRICS.md for the metric reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"graphitti"
	"graphitti/internal/durable"
	"graphitti/internal/httpapi"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/shard"
	"graphitti/internal/workload"
)

func main() {
	cfg := serverConfig{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.study, "study", "influenza", "demo study: influenza or neuro (or empty for none)")
	flag.IntVar(&cfg.anns, "anns", 400, "annotation count for the influenza study")
	flag.IntVar(&cfg.images, "images", 12, "image count for the neuro study")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "load the store from a persist snapshot file instead")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable mode: WAL + snapshot directory (created if missing)")
	flag.Int64Var(&cfg.compactMiB, "compact-threshold-mib", 0, "durable mode: WAL size triggering compaction (0 = default)")
	flag.IntVar(&cfg.shards, "shards", 1, "writer pipelines: >1 shards the store (per-shard WAL/snapshot under -data-dir); a durable directory pins its count, adopted when the flag is left unset (0 adopts explicitly)")
	flag.DurationVar(&cfg.opts.QueryTimeout, "query-timeout", 0, "per-request limit for /api/search and /api/query (0 = none); timed-out requests get a 408 JSON error")
	flag.Int64Var(&cfg.opts.MaxBodyBytes, "max-body-bytes", 0, "cap on JSON request bodies (0 = default 8 MiB); larger requests get 413")
	flag.StringVar(&cfg.rulesFile, "rules", "", "JSON file of propagation rules to install at startup (rules already present are kept)")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 15*time.Second, "graceful drain limit on SIGINT/SIGTERM before open requests are aborted")
	flag.BoolVar(&cfg.opts.EnablePprof, "pprof", false, "mount net/http/pprof under /debug/pprof (CPU/heap profiles; off by default)")
	flag.DurationVar(&cfg.opts.SlowRequest, "slow-request", 0, "log any request at least this slow with its span breakdown (0 = off); traces are browsable at /debug/traces either way")
	flag.IntVar(&cfg.opts.TraceRingSize, "trace-ring", 0, "per-shard retention of GET /debug/traces (0 = default 256)")
	flag.IntVar(&cfg.opts.TraceSampleEvery, "trace-sample", 0, "retain every Nth request's trace (0/1 = all; ?trace=1 requests are always kept)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			cfg.shardsSet = true
		}
	})

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, logger); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

type serverConfig struct {
	addr         string
	study        string
	anns, images int
	snapshot     string
	dataDir      string
	compactMiB   int64
	shards       int
	// shardsSet records whether -shards was given explicitly: a durable
	// directory's recorded count is adopted when it was not, and an
	// explicit value must match the directory.
	shardsSet       bool
	rulesFile       string
	shutdownTimeout time.Duration
	opts            httpapi.Options
	// onListen, when set, receives the bound address once the listener
	// is up — the test hook for -addr :0.
	onListen func(net.Addr)
}

// run builds the store, serves until ctx is cancelled (the signal), then
// drains in-flight requests and closes the durable store so the WAL is
// flushed before exit.
func run(ctx context.Context, cfg serverConfig, logger *slog.Logger) error {
	// The API layer logs failed (5xx) requests with their request IDs on
	// the same structured stream as startup/shutdown events.
	cfg.opts.Logger = logger
	handler, store, report, err := buildHandler(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: handler,
		// Bound header reads and idle keep-alives so stalled or leaky
		// clients cannot pin connections forever; request bodies are
		// size-capped at the handler layer instead of time-capped here,
		// because restore uploads are legitimately slow.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"dataDir", cfg.dataDir,
		"shutdownTimeout", cfg.shutdownTimeout)
	if cfg.onListen != nil {
		cfg.onListen(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining")
		start := time.Now()
		// The parent ctx is already canceled on this branch; deriving the
		// drain deadline from it would make Shutdown return immediately.
		//lint:ignore ctxflow drain timeout must outlive the canceled parent ctx
		dctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if derr := srv.Shutdown(dctx); derr != nil {
			logger.Warn("drain incomplete, aborting open requests",
				"err", derr, "after", time.Since(start))
			_ = srv.Close()
		}
		logger.Info("drained", "duration", time.Since(start))
	case err = <-errc:
		// Serve never returns nil before Shutdown; anything here is a
		// listener failure.
		logger.Error("serve failed", "err", err)
	}

	if store != nil {
		if cerr := store.Close(); cerr != nil {
			logger.Error("closing durable store", "dataDir", cfg.dataDir, "err", cerr)
			if err == nil {
				err = cerr
			}
		} else {
			switch st := store.(type) {
			case *durable.Store:
				logger.Info("durable store closed", "dataDir", cfg.dataDir, "seq", st.Stats().Seq)
			default:
				logger.Info("durable store closed", "dataDir", cfg.dataDir)
			}
		}
	}
	return err
}

// closableStore is what run flushes and closes on exit: the durable
// store, or the sharded store closing every pipeline.
type closableStore interface {
	Close() error
}

// buildHandler assembles the HTTP handler and, in durable mode, returns
// the store so run can close it on exit.
func buildHandler(cfg serverConfig) (http.Handler, closableStore, string, error) {
	rules, err := loadRules(cfg.rulesFile)
	if err != nil {
		return nil, nil, "", err
	}
	// -shards >1 runs the sharded pipeline. So does a data directory that
	// was created sharded (its SHARDS.json names the count), whatever the
	// flag says: falling through to the unsharded path would serve an
	// empty store and fork the directory with a second top-level WAL
	// beside the untouched shard-<k>/ data. A defaulted flag adopts the
	// recorded count; an explicit mismatch is refused by shard.Open.
	if cfg.shards > 1 || hasShardsManifest(cfg.dataDir) {
		return buildShardedHandler(cfg, rules)
	}
	if cfg.dataDir == "" {
		store, err := buildStore(cfg.study, cfg.anns, cfg.images, cfg.snapshot)
		if err != nil {
			return nil, nil, "", err
		}
		if err := installRules(rules, func(r graphitti.Rule) error {
			return graphitti.AddRule(store, r)
		}); err != nil {
			return nil, nil, "", err
		}
		st := store.Stats()
		report := fmt.Sprintf("graphitti-server: %d annotations, %d referents, %d a-graph edges, %d derived facts via %d rules (in-memory)\n",
			st.Annotations, st.Referents, st.GraphEdges, st.Derived, len(graphitti.Rules(store)))
		return httpapi.NewHandlerWithOptions(store, cfg.opts), nil, report, nil
	}

	// A directory with shard-<k>/ data but no manifest is a sharded
	// deployment whose SHARDS.json was lost, not an unsharded store:
	// opening it here would fork it with a top-level WAL while the shard
	// data sits invisible.
	if hasShardDirs(cfg.dataDir) {
		return nil, nil, "", fmt.Errorf("data directory %s contains shard-* data but no SHARDS.json; restore the manifest with the original shard count", cfg.dataDir)
	}
	d, err := durable.Open(cfg.dataDir, durable.Options{CompactThreshold: cfg.compactMiB << 20})
	if err != nil {
		return nil, nil, "", err
	}
	ds := d.Stats()
	report := fmt.Sprintf("graphitti-server: durable store in %s (seq %d, %d replayed, %d torn bytes truncated)\n",
		cfg.dataDir, ds.Seq, ds.ReplayedRecords, ds.TornBytes)
	if ds.Seq == 0 && (cfg.snapshot != "" || cfg.study != "") {
		// Fresh directory: seed it from the requested study/snapshot and
		// checkpoint immediately.
		seed, err := buildStore(cfg.study, cfg.anns, cfg.images, cfg.snapshot)
		if err != nil {
			return nil, nil, "", err
		}
		snap, err := persist.Export(seed)
		if err != nil {
			return nil, nil, "", err
		}
		if _, err := d.Restore(snap); err != nil {
			return nil, nil, "", err
		}
		report += fmt.Sprintf("seeded empty data dir from %s\n", seedSource(cfg.study, cfg.snapshot))
	}
	// Rules from -rules are durable ops: logged, so they survive
	// restarts whether or not the file is passed again. Ones already
	// present (replayed from a previous run) are kept, not duplicated.
	if err := installRules(rules, d.AddRule); err != nil {
		return nil, nil, "", err
	}
	st := d.Core().Stats()
	report += fmt.Sprintf("serving %d annotations, %d referents, %d a-graph edges, %d derived facts via %d rules (durable)\n",
		st.Annotations, st.Referents, st.GraphEdges, st.Derived, len(graphitti.Rules(d.Core())))
	return httpapi.NewDurableHandlerWithOptions(d, cfg.opts), d, report, nil
}

// buildShardedHandler assembles the sharded deployment: -shards writer
// pipelines behind the router, in-memory or (with -data-dir) each with
// its own WAL + snapshot chain under dir/shard-<k>/.
func buildShardedHandler(cfg serverConfig, rules []prop.Rule) (http.Handler, closableStore, string, error) {
	var (
		sh  *shard.Store
		err error
	)
	if cfg.dataDir == "" {
		sh = shard.New(cfg.shards)
	} else {
		n := cfg.shards
		if !cfg.shardsSet && hasShardsManifest(cfg.dataDir) {
			// Restart with the flag left at its default: adopt the
			// directory's recorded count instead of imposing 1.
			n = 0
		}
		sh, err = shard.Open(cfg.dataDir, n, durable.Options{CompactThreshold: cfg.compactMiB << 20})
		if err != nil {
			return nil, nil, "", err
		}
	}
	report := fmt.Sprintf("graphitti-server: %d shards", sh.NumShards())
	fresh := true
	if sh.Durable() {
		var seq uint64
		for _, st := range sh.DurabilityStats() {
			seq += st.Seq
		}
		fresh = seq == 0
		report += fmt.Sprintf(" in %s (summed seq %d)", cfg.dataDir, seq)
	}
	report += "\n"
	if fresh && (cfg.snapshot != "" || cfg.study != "") {
		seed, err := buildStore(cfg.study, cfg.anns, cfg.images, cfg.snapshot)
		if err != nil {
			return nil, nil, "", err
		}
		snap, err := persist.Export(seed)
		if err != nil {
			return nil, nil, "", err
		}
		if err := sh.Restore(snap); err != nil {
			return nil, nil, "", err
		}
		report += fmt.Sprintf("seeded shards from %s\n", seedSource(cfg.study, cfg.snapshot))
	}
	if err := installRules(rules, sh.AddRule); err != nil {
		return nil, nil, "", err
	}
	st := sh.Stats()
	report += fmt.Sprintf("serving %d annotations, %d referents, %d a-graph edges, %d derived facts via %d rules (%d shards)\n",
		st.Annotations, st.Referents, st.GraphEdges, st.Derived, len(sh.Rules()), sh.NumShards())
	var closer closableStore
	if sh.Durable() {
		closer = sh
	}
	return httpapi.NewShardedHandlerWithOptions(sh, cfg.opts), closer, report, nil
}

// loadRules parses the -rules file (nil when the flag is unset).
func loadRules(path string) ([]prop.Rule, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prop.ParseRules(f)
}

// installRules adds each rule via add, keeping duplicates already
// installed (e.g. replayed from the WAL).
func installRules(rules []prop.Rule, add func(prop.Rule) error) error {
	for _, r := range rules {
		if err := add(r); err != nil && !errors.Is(err, prop.ErrDuplicateRule) {
			return fmt.Errorf("install rule %s: %w", r.ID, err)
		}
	}
	return nil
}

// hasShardsManifest reports whether dir was initialised as a sharded
// data directory.
func hasShardsManifest(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, "SHARDS.json"))
	return err == nil
}

// hasShardDirs reports whether dir holds shard-<k> subdirectories.
func hasShardDirs(dir string) bool {
	matches, _ := filepath.Glob(filepath.Join(dir, "shard-*"))
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && fi.IsDir() {
			return true
		}
	}
	return false
}

func seedSource(study, snapshot string) string {
	if snapshot != "" {
		return "snapshot " + snapshot
	}
	return "study " + study
}

func buildStore(study string, anns, images int, snapshot string) (*graphitti.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return persist.Read(f)
	}
	switch study {
	case "", "none":
		return graphitti.New(), nil
	case "influenza":
		cfg := workload.DefaultInfluenza
		cfg.Annotations = anns
		s, err := workload.Influenza(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	case "neuro":
		cfg := workload.DefaultNeuro
		cfg.Images = images
		s, err := workload.Neuroscience(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	default:
		return nil, fmt.Errorf("unknown study %q", study)
	}
}
