// Command graphitti-server serves a Graphitti store over HTTP/JSON — the
// service-shaped equivalent of the paper's demo GUI. By default it loads a
// generated demonstration study; pass -snapshot to serve a store exported
// with the persist format (e.g. from GET /api/snapshot).
//
//	go run ./cmd/graphitti-server -addr :8080 -study influenza
//	curl localhost:8080/api/stats
//	curl -X POST localhost:8080/api/search -d '{"expr":"contains(/annotation/body, \"protease\")"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"graphitti"
	"graphitti/internal/httpapi"
	"graphitti/internal/persist"
	"graphitti/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	studyName := flag.String("study", "influenza", "demo study: influenza or neuro")
	anns := flag.Int("anns", 400, "annotation count for the influenza study")
	images := flag.Int("images", 12, "image count for the neuro study")
	snapshot := flag.String("snapshot", "", "load the store from a persist snapshot file instead")
	flag.Parse()

	store, err := buildStore(*studyName, *anns, *images, *snapshot)
	if err != nil {
		log.Fatal(err)
	}
	st := store.Stats()
	fmt.Printf("graphitti-server: %d annotations, %d referents, %d a-graph edges\n",
		st.Annotations, st.Referents, st.GraphEdges)
	fmt.Printf("listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, httpapi.NewHandler(store)))
}

func buildStore(study string, anns, images int, snapshot string) (*graphitti.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return persist.Read(f)
	}
	switch study {
	case "influenza":
		cfg := workload.DefaultInfluenza
		cfg.Annotations = anns
		s, err := workload.Influenza(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	case "neuro":
		cfg := workload.DefaultNeuro
		cfg.Images = images
		s, err := workload.Neuroscience(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	default:
		return nil, fmt.Errorf("unknown study %q", study)
	}
}
