// Command graphitti-server serves a Graphitti store over HTTP/JSON — the
// service-shaped equivalent of the paper's demo GUI. By default it loads a
// generated demonstration study; pass -snapshot to serve a store exported
// with the persist format (e.g. from GET /api/snapshot), or -data-dir to
// run durably: every mutation is write-ahead logged and fdatasynced
// before it is acknowledged, and the directory is replayed on restart.
//
//	go run ./cmd/graphitti-server -addr :8080 -study influenza
//	go run ./cmd/graphitti-server -addr :8080 -data-dir ./data
//	curl localhost:8080/api/stats
//	curl -X POST localhost:8080/api/search -d '{"expr":"contains(/annotation/body, \"protease\")"}'
//
// In durable mode a -study or -snapshot seeds the directory only when it
// holds no prior state; an existing directory always wins.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"graphitti"
	"graphitti/internal/durable"
	"graphitti/internal/httpapi"
	"graphitti/internal/persist"
	"graphitti/internal/prop"
	"graphitti/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	studyName := flag.String("study", "influenza", "demo study: influenza or neuro (or empty for none)")
	anns := flag.Int("anns", 400, "annotation count for the influenza study")
	images := flag.Int("images", 12, "image count for the neuro study")
	snapshot := flag.String("snapshot", "", "load the store from a persist snapshot file instead")
	dataDir := flag.String("data-dir", "", "durable mode: WAL + snapshot directory (created if missing)")
	compactMiB := flag.Int64("compact-threshold-mib", 0, "durable mode: WAL size triggering compaction (0 = default)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-request limit for /api/search and /api/query (0 = none); timed-out requests get a 408 JSON error")
	rulesFile := flag.String("rules", "", "JSON file of propagation rules to install at startup (rules already present are kept)")
	flag.Parse()

	opts := httpapi.Options{QueryTimeout: *queryTimeout}
	handler, report, err := buildHandler(*dataDir, *studyName, *anns, *images, *snapshot, *compactMiB, *rulesFile, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
	fmt.Printf("listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

func buildHandler(dataDir, study string, anns, images int, snapshot string, compactMiB int64, rulesFile string, opts httpapi.Options) (http.Handler, string, error) {
	rules, err := loadRules(rulesFile)
	if err != nil {
		return nil, "", err
	}
	if dataDir == "" {
		store, err := buildStore(study, anns, images, snapshot)
		if err != nil {
			return nil, "", err
		}
		if err := installRules(rules, func(r graphitti.Rule) error {
			return graphitti.AddRule(store, r)
		}); err != nil {
			return nil, "", err
		}
		st := store.Stats()
		report := fmt.Sprintf("graphitti-server: %d annotations, %d referents, %d a-graph edges, %d derived facts via %d rules (in-memory)\n",
			st.Annotations, st.Referents, st.GraphEdges, st.Derived, len(graphitti.Rules(store)))
		return httpapi.NewHandlerWithOptions(store, opts), report, nil
	}

	d, err := durable.Open(dataDir, durable.Options{CompactThreshold: compactMiB << 20})
	if err != nil {
		return nil, "", err
	}
	ds := d.Stats()
	report := fmt.Sprintf("graphitti-server: durable store in %s (seq %d, %d replayed, %d torn bytes truncated)\n",
		dataDir, ds.Seq, ds.ReplayedRecords, ds.TornBytes)
	if ds.Seq == 0 && (snapshot != "" || study != "") {
		// Fresh directory: seed it from the requested study/snapshot and
		// checkpoint immediately.
		seed, err := buildStore(study, anns, images, snapshot)
		if err != nil {
			return nil, "", err
		}
		snap, err := persist.Export(seed)
		if err != nil {
			return nil, "", err
		}
		if _, err := d.Restore(snap); err != nil {
			return nil, "", err
		}
		report += fmt.Sprintf("seeded empty data dir from %s\n", seedSource(study, snapshot))
	}
	// Rules from -rules are durable ops: logged, so they survive
	// restarts whether or not the file is passed again. Ones already
	// present (replayed from a previous run) are kept, not duplicated.
	if err := installRules(rules, d.AddRule); err != nil {
		return nil, "", err
	}
	st := d.Core().Stats()
	report += fmt.Sprintf("serving %d annotations, %d referents, %d a-graph edges, %d derived facts via %d rules (durable)\n",
		st.Annotations, st.Referents, st.GraphEdges, st.Derived, len(graphitti.Rules(d.Core())))
	return httpapi.NewDurableHandlerWithOptions(d, opts), report, nil
}

// loadRules parses the -rules file (nil when the flag is unset).
func loadRules(path string) ([]prop.Rule, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prop.ParseRules(f)
}

// installRules adds each rule via add, keeping duplicates already
// installed (e.g. replayed from the WAL).
func installRules(rules []prop.Rule, add func(prop.Rule) error) error {
	for _, r := range rules {
		if err := add(r); err != nil && !errors.Is(err, prop.ErrDuplicateRule) {
			return fmt.Errorf("install rule %s: %w", r.ID, err)
		}
	}
	return nil
}

func seedSource(study, snapshot string) string {
	if snapshot != "" {
		return "snapshot " + snapshot
	}
	return "study " + study
}

func buildStore(study string, anns, images int, snapshot string) (*graphitti.Store, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return persist.Read(f)
	}
	switch study {
	case "", "none":
		return graphitti.New(), nil
	case "influenza":
		cfg := workload.DefaultInfluenza
		cfg.Annotations = anns
		s, err := workload.Influenza(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	case "neuro":
		cfg := workload.DefaultNeuro
		cfg.Images = images
		s, err := workload.Neuroscience(cfg)
		if err != nil {
			return nil, err
		}
		return s.Store, nil
	default:
		return nil, fmt.Errorf("unknown study %q", study)
	}
}
