// The traces sub-command: an ASCII span-tree renderer over the JSON that
// GET /debug/traces (or a ?trace=1 response) serves, so an operator can
// eyeball where requests spent their time without leaving the terminal.
// See docs/TRACING.md for the span model.

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"graphitti/internal/trace"
)

// tracesDump mirrors the GET /debug/traces payload; a ?trace=1 envelope
// (a single trace under "trace") is also accepted.
type tracesDump struct {
	Count  int           `json:"count"`
	Traces []*trace.Node `json:"traces"`
	Trace  *trace.Node   `json:"trace"`
}

// cmdTraces fetches (-url) or reads (-f, '-' for stdin) a trace dump and
// renders each trace as an indented span tree.
func cmdTraces(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	url := fs.String("url", "", "fetch traces from this /debug/traces URL (query params pass through)")
	file := fs.String("f", "", "read a trace dump from this file ('-' for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src io.Reader
	switch {
	case *url != "":
		resp, err := http.Get(*url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("traces: GET %s: %s", *url, resp.Status)
		}
		src = resp.Body
	case *file == "-" || *file == "":
		src = os.Stdin
	default:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var dump tracesDump
	if err := json.NewDecoder(src).Decode(&dump); err != nil {
		return fmt.Errorf("traces: bad JSON: %w", err)
	}
	if dump.Trace != nil {
		dump.Traces = append(dump.Traces, dump.Trace)
	}
	if len(dump.Traces) == 0 {
		fmt.Fprintln(w, "no traces")
		return nil
	}
	for i, n := range dump.Traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "trace %s\n", n.TraceID)
		renderSpan(w, n, "", true)
	}
	return nil
}

// renderSpan draws one span line — name, shard tag, duration, attrs —
// and recurses with box-drawing connectors.
func renderSpan(w io.Writer, n *trace.Node, prefix string, last bool) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	line := prefix + connector + n.Name
	if n.Shard != nil {
		line += fmt.Sprintf("[%d]", *n.Shard)
	}
	line += fmt.Sprintf("  %s", (time.Duration(n.DurationMicros) * time.Microsecond).String())
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf("  %s=%s", k, n.Attrs[k])
		}
	}
	fmt.Fprintln(w, line)
	for i, c := range n.Children {
		renderSpan(w, c, childPrefix, i == len(n.Children)-1)
	}
}
