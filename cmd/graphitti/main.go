// Command graphitti is the CLI equivalent of the paper's three-tab Java
// GUI: the annotate, query and admin workflows run as sub-commands over a
// generated demonstration study (the store is in-memory; the original demo
// was equally session-scoped).
//
// Usage:
//
//	graphitti [-study influenza|neuro] [-anns N] <command> [args]
//
// Commands:
//
//	stats                          admin tab: component sizes
//	search <xquery>                content search over annotation XML
//	query <graph-query>            the SPARQL-like query language
//	annotate -domain D -lo L -hi H -creator C -body B [-term ont/term]
//	                               annotation tab: mark + commit, prints XML
//	related -ann ID                indirect relations of an annotation
//	correlated -ann ID             correlated-data view of an annotation
//	q1                             the paper's intro query (neuro study)
//	q2 [-k K] [-keyword W]         the query-tab query (influenza study)
//	metrics [-format prom|json|csv]
//	                               dump the process metric registry
//	metrics-lint                   validate the Prometheus exposition format
//	traces [-url U | -f FILE]      render /debug/traces output as ASCII
//	                               span trees (see docs/TRACING.md)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphitti"
	"graphitti/internal/biodata/phylo"
	"graphitti/internal/biodata/seq"
	"graphitti/internal/obs"
	"graphitti/internal/ontology"
	"graphitti/internal/persist"
	"graphitti/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphitti:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("graphitti", flag.ContinueOnError)
	studyName := global.String("study", "influenza", "demo study to load: influenza or neuro")
	anns := global.Int("anns", 400, "annotation count for the influenza study")
	images := global.Int("images", 12, "image count for the neuro study")
	load := global.String("load", "", "load the store from a snapshot file instead of generating a study")
	save := global.String("save", "", "write the store to a snapshot file after the command")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		global.Usage()
		return fmt.Errorf("missing command (stats|search|query|annotate|related|correlated|q1|q2|metrics|metrics-lint)")
	}
	// metrics-lint and traces inspect the registry / a server's trace
	// dump only; don't build a store for them.
	if rest[0] == "metrics-lint" {
		return cmdMetricsLint(os.Stdout, rest[1:])
	}
	if rest[0] == "traces" {
		return cmdTraces(os.Stdout, rest[1:])
	}

	var store *graphitti.Store
	switch {
	case *load != "":
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		st, err := persist.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		store = st
	case *studyName == "none", *studyName == "empty":
		store = graphitti.New()
	case *studyName == "influenza":
		cfg := workload.DefaultInfluenza
		cfg.Annotations = *anns
		study, err := workload.Influenza(cfg)
		if err != nil {
			return err
		}
		store = study.Store
	case *studyName == "neuro":
		cfg := workload.DefaultNeuro
		cfg.Images = *images
		study, err := workload.Neuroscience(cfg)
		if err != nil {
			return err
		}
		store = study.Store
	default:
		return fmt.Errorf("unknown study %q", *studyName)
	}
	if *save != "" {
		defer func() {
			f, err := os.Create(*save)
			if err != nil {
				fmt.Fprintln(os.Stderr, "graphitti: save:", err)
				return
			}
			defer f.Close()
			if err := persist.Write(store, f); err != nil {
				fmt.Fprintln(os.Stderr, "graphitti: save:", err)
			}
		}()
	}

	cmd, cmdArgs := rest[0], rest[1:]
	switch cmd {
	case "stats":
		return cmdStats(store)
	case "search":
		return cmdSearch(store, cmdArgs)
	case "query":
		return cmdQuery(store, cmdArgs)
	case "annotate":
		return cmdAnnotate(store, cmdArgs)
	case "related":
		return cmdRelated(store, cmdArgs)
	case "correlated":
		return cmdCorrelated(store, cmdArgs)
	case "q1":
		return cmdQ1(store)
	case "q2":
		return cmdQ2(store, cmdArgs)
	case "register":
		return cmdRegister(store, cmdArgs)
	case "connect":
		return cmdConnect(store, cmdArgs)
	case "ontology":
		return cmdOntology(store, cmdArgs)
	case "metrics":
		return cmdMetrics(cmdArgs)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// cmdMetrics dumps the process metric registry. Building the study above
// already exercised the store, so the gauges and commit counters reflect
// it — useful for eyeballing instrument output without a server.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	format := fs.String("format", "prom", "output format: prom (Prometheus text), json, or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "prom":
		return obs.Default.WritePrometheus(os.Stdout)
	case "json":
		return obs.Default.WriteJSON(os.Stdout)
	case "csv":
		return obs.Default.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (want prom, json or csv)", *format)
	}
}

// cmdMetricsLint runs the strict Prometheus exposition validator — the
// offline form of the CI scrape check. By default it serializes the
// in-process registry (package imports alone register every metric, so a
// name or label defect fails before a server ever runs); -f validates a
// scraped file instead, and -min-families guards against a server that
// silently stopped exposing whole subsystems.
func cmdMetricsLint(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("metrics-lint", flag.ContinueOnError)
	file := fs.String("f", "", "validate this scraped exposition file ('-' for stdin) instead of the in-process registry")
	minFamilies := fs.Int("min-families", 0, "fail unless at least this many metric families are present")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src io.Reader
	switch *file {
	case "":
		var buf bytes.Buffer
		if err := obs.Default.WritePrometheus(&buf); err != nil {
			return err
		}
		src = &buf
	case "-":
		src = os.Stdin
	default:
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	exp, err := obs.ValidateExposition(src)
	if err != nil {
		return fmt.Errorf("metrics-lint: %w", err)
	}
	if len(exp.Families) < *minFamilies {
		return fmt.Errorf("metrics-lint: %d metric families, want at least %d", len(exp.Families), *minFamilies)
	}
	fmt.Fprintf(w, "metrics-lint: ok — %d families, %d samples\n", len(exp.Families), exp.Samples)
	return nil
}

// cmdOntology browses a registered ontology: the CLI form of the
// annotation tab's right panel (OntoQuest browsing).
func cmdOntology(s *graphitti.Store, args []string) error {
	fs := flag.NewFlagSet("ontology", flag.ContinueOnError)
	name := fs.String("name", "", "ontology to browse (default: first registered)")
	ci := fs.String("ci", "", "print all instances (CI) of this concept")
	subtree := fs.String("subtree", "", "print the is_a subtree under this term")
	annotated := fs.String("annotated", "", "list annotations referencing this term or its instances")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := s.Ontologies()
	if len(names) == 0 {
		return fmt.Errorf("no ontologies registered")
	}
	if *name == "" {
		*name = names[0]
	}
	ont, err := s.Ontology(*name)
	if err != nil {
		return err
	}
	switch {
	case *ci != "":
		got, err := ont.CI(*ci)
		if err != nil {
			return err
		}
		fmt.Printf("CI(%s) in %s: %d instance(s)\n", *ci, *name, len(got))
		for _, t := range got {
			term, _ := ont.Term(t)
			fmt.Printf("  %s (%s)\n", t, term.Name)
		}
	case *subtree != "":
		st, err := ont.SubTree(*subtree, []string{ontology.IsA})
		if err != nil {
			return err
		}
		fmt.Printf("SubTree(%s) in %s: %d term(s), %d edge(s)\n",
			*subtree, *name, st.Size(), len(st.Edges))
		for _, e := range st.Edges {
			fmt.Printf("  %s -%s-> %s\n", e.From, e.Rel, e.To)
		}
	case *annotated != "":
		anns, err := s.AnnotationsWithTermUnder(*name, *annotated)
		if err != nil {
			return err
		}
		fmt.Printf("%d annotation(s) reference %s or its instances\n", len(anns), *annotated)
		for _, ann := range anns {
			fmt.Printf("  %d by %s (%q)\n", ann.ID, ann.DC.First("creator"), ann.DC.First("title"))
		}
	default:
		fmt.Printf("ontology %s: %d terms, %d edges; roots:\n", *name, ont.Len(), ont.EdgeCount())
		for _, r := range ont.Roots() {
			term, _ := ont.Term(r)
			fmt.Printf("  %s (%s)\n", r, term.Name)
		}
	}
	return nil
}

// cmdRegister loads data objects from files: FASTA sequences, OBO
// ontologies, Newick trees. Combined with -save/-load this is the admin
// tab's registration workflow.
func cmdRegister(s *graphitti.Store, args []string) error {
	fs := flag.NewFlagSet("register", flag.ContinueOnError)
	fasta := fs.String("fasta", "", "FASTA file of sequences to register")
	kind := fs.String("kind", "dna", "sequence kind for -fasta: dna, rna or protein")
	domain := fs.String("domain", "", "coordinate domain for -fasta sequences (default: per-sequence)")
	obo := fs.String("obo", "", "OBO ontology file to register")
	newick := fs.String("newick", "", "Newick tree file to register")
	treeID := fs.String("id", "tree-1", "tree ID for -newick")
	if err := fs.Parse(args); err != nil {
		return err
	}
	registered := 0
	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			return err
		}
		defer f.Close()
		var k seq.Kind
		switch *kind {
		case "dna":
			k = seq.DNA
		case "rna":
			k = seq.RNA
		case "protein":
			k = seq.Protein
		default:
			return fmt.Errorf("unknown sequence kind %q", *kind)
		}
		seqs, err := seq.ParseFASTA(f, k)
		if err != nil {
			return err
		}
		for _, sq := range seqs {
			sq.Domain = *domain
			if err := s.RegisterSequence(sq); err != nil {
				return err
			}
			fmt.Printf("registered %s sequence %s (%d residues)\n", *kind, sq.ID, sq.Len())
			registered++
		}
	}
	if *obo != "" {
		f, err := os.Open(*obo)
		if err != nil {
			return err
		}
		defer f.Close()
		ont, err := ontology.ParseOBO(f)
		if err != nil {
			return err
		}
		if err := ont.Validate(); err != nil {
			return err
		}
		if err := s.RegisterOntology(ont); err != nil {
			return err
		}
		fmt.Printf("registered ontology %s (%d terms, %d edges)\n",
			ont.Name(), ont.Len(), ont.EdgeCount())
		registered++
	}
	if *newick != "" {
		raw, err := os.ReadFile(*newick)
		if err != nil {
			return err
		}
		tree, err := phylo.ParseNewick(*treeID, strings.TrimSpace(string(raw)))
		if err != nil {
			return err
		}
		if err := s.RegisterTree(tree); err != nil {
			return err
		}
		fmt.Printf("registered tree %s (%d leaves)\n", tree.ID, tree.NumLeaves())
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("register: pass at least one of -fasta, -obo, -newick")
	}
	return nil
}

// cmdConnect prints the connection subgraph of a set of annotations,
// optionally as Graphviz DOT.
func cmdConnect(s *graphitti.Store, args []string) error {
	fs := flag.NewFlagSet("connect", flag.ContinueOnError)
	annList := fs.String("anns", "", "comma-separated annotation IDs (at least two)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of a listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ids []uint64
	for _, part := range strings.Split(*annList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return fmt.Errorf("bad annotation id %q", part)
		}
		ids = append(ids, id)
	}
	if len(ids) < 2 {
		return fmt.Errorf("connect: -anns wants at least two IDs")
	}
	sg, err := s.ConnectAnnotations(ids...)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(sg.DOT("connect"))
		return nil
	}
	fmt.Printf("connection subgraph: %d nodes, %d edges, connected=%v\n",
		sg.NodeCount(), sg.EdgeCount(), sg.Connected())
	for _, n := range sg.Nodes {
		fmt.Printf("  %v\n", n)
	}
	for _, e := range sg.Edges {
		fmt.Printf("  %v -[%s]-> %v\n", e.From, e.Label, e.To)
	}
	return nil
}

func cmdStats(s *graphitti.Store) error {
	st := s.Stats()
	fmt.Println("Graphitti store (admin view)")
	fmt.Printf("  annotations        %6d\n", st.Annotations)
	fmt.Printf("  referents          %6d\n", st.Referents)
	fmt.Printf("  sequences          %6d\n", st.Sequences)
	fmt.Printf("  alignments         %6d\n", st.Alignments)
	fmt.Printf("  phylo trees        %6d\n", st.Trees)
	fmt.Printf("  interaction graphs %6d\n", st.InteractionGraphs)
	fmt.Printf("  images             %6d\n", st.Images)
	fmt.Printf("  ontologies         %6d\n", st.Ontologies)
	fmt.Printf("  interval trees     %6d\n", st.IntervalTrees)
	fmt.Printf("  R-trees            %6d\n", st.RTrees)
	fmt.Printf("  a-graph nodes      %6d\n", st.GraphNodes)
	fmt.Printf("  a-graph edges      %6d\n", st.GraphEdges)
	fmt.Printf("  indexed keywords   %6d\n", st.Keywords)
	return nil
}

func cmdSearch(s *graphitti.Store, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: search <xquery-expression>")
	}
	anns, err := s.SearchContents(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%d annotation(s) match\n", len(anns))
	for _, ann := range anns {
		fmt.Printf("--- annotation %d ---\n%s", ann.ID, ann.Content.String())
	}
	return nil
}

func cmdQuery(s *graphitti.Store, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: query <graph-query>")
	}
	p := graphitti.NewProcessor(s)
	res, err := p.Execute(args[0], graphitti.DefaultQueryOptions)
	if err != nil {
		return err
	}
	fmt.Printf("plan order: %s\n", strings.Join(res.Stats.Order, " -> "))
	for _, v := range res.Stats.Order {
		fmt.Printf("  sub-query ?%s: %d candidates, est. cost %.1f, %s\n",
			v, res.Stats.CandidateCounts[v], res.Stats.Costs[v], res.Stats.Strategies[v])
	}
	fmt.Printf("%d match(es), %d binding(s) tried\n", res.Stats.Matches, res.Stats.BindingsTried)
	for _, ann := range res.Annotations {
		fmt.Printf("--- annotation %d ---\n%s", ann.ID, ann.Content.String())
	}
	for _, r := range res.Referents {
		fmt.Println(" ", r)
	}
	for i, sg := range res.Subgraphs {
		fmt.Printf("  subgraph %d: %d nodes, %d edges\n", i+1, sg.NodeCount(), sg.EdgeCount())
		for _, n := range sg.Nodes {
			fmt.Printf("    %v\n", n)
		}
	}
	return nil
}

func cmdAnnotate(s *graphitti.Store, args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	domain := fs.String("domain", "segment1", "coordinate domain to mark")
	lo := fs.Int64("lo", 0, "interval start")
	hi := fs.Int64("hi", 100, "interval end (exclusive)")
	creator := fs.String("creator", "cli-user", "Dublin Core creator")
	date := fs.String("date", "2008-04-07", "Dublin Core date")
	body := fs.String("body", "annotated from the CLI", "annotation body text")
	term := fs.String("term", "", "ontology reference as ontology/termID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := s.MarkDomainInterval(*domain, graphitti.Span(*lo, *hi))
	if err != nil {
		return err
	}
	b := s.NewAnnotation().Creator(*creator).Date(*date).Body(*body).Refer(m)
	if *term != "" {
		ont, t, ok := strings.Cut(*term, "/")
		if !ok {
			return fmt.Errorf("-term wants ontology/termID, got %q", *term)
		}
		b.OntologyRef(ont, t)
	}
	ann, err := s.Commit(b)
	if err != nil {
		return err
	}
	fmt.Printf("committed annotation %d:\n%s", ann.ID, ann.Content.String())
	return nil
}

func parseAnnID(args []string) (uint64, error) {
	fs := flag.NewFlagSet("ann", flag.ContinueOnError)
	ann := fs.Uint64("ann", 1, "annotation ID")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	return *ann, nil
}

func cmdRelated(s *graphitti.Store, args []string) error {
	id, err := parseAnnID(args)
	if err != nil {
		return err
	}
	rel, err := s.RelatedAnnotations(id)
	if err != nil {
		return err
	}
	fmt.Printf("%d annotation(s) indirectly related to %d\n", len(rel), id)
	for _, ann := range rel {
		fmt.Printf("  %d  creator=%s  title=%q\n", ann.ID,
			ann.DC.First("creator"), ann.DC.First("title"))
	}
	return nil
}

func cmdCorrelated(s *graphitti.Store, args []string) error {
	id, err := parseAnnID(args)
	if err != nil {
		return err
	}
	items, err := s.CorrelatedData(id)
	if err != nil {
		return err
	}
	fmt.Printf("correlated data of annotation %d:\n", id)
	for _, it := range items {
		fmt.Printf("  [%s] %s\n", it.Label, it.Description)
	}
	return nil
}

func cmdQ1(s *graphitti.Store) error {
	res, err := graphitti.QueryTP53Images(s, graphitti.TP53Options{})
	if err != nil {
		return err
	}
	fmt.Println("Q1: annotations containing \"protein.TP53\" with paths to all")
	fmt.Println("    images having >= 2 regions annotated \"Deep Cerebellar nuclei\"")
	fmt.Printf("qualifying images (%d):\n", len(res.QualifyingImages))
	for _, img := range res.QualifyingImages {
		fmt.Printf("  %s (%d matching regions)\n", img, res.RegionCounts[img])
	}
	fmt.Printf("answers (%d):\n", len(res.Annotations))
	for _, ann := range res.Annotations {
		fmt.Printf("  annotation %d  title=%q\n", ann.ID, ann.DC.First("title"))
	}
	return nil
}

func cmdQ2(s *graphitti.Store, args []string) error {
	fs := flag.NewFlagSet("q2", flag.ContinueOnError)
	k := fs.Int("k", 4, "chain length")
	keyword := fs.String("keyword", "protease", "keyword each link must contain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	chains, err := graphitti.QueryConsecutiveKeyword(s, graphitti.ConsecutiveOptions{
		Keyword: *keyword, K: *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Q2: %d chain(s) of %d consecutive disjoint %q intervals\n",
		len(chains), *k, *keyword)
	for i, c := range chains {
		fmt.Printf("  chain %d on %s (sequences %s):\n", i+1, c.Domain,
			strings.Join(c.Sequences, ","))
		for _, r := range c.Referents {
			fmt.Printf("    %v\n", r.Interval)
		}
	}
	return nil
}
