// Command graphitti-lint runs the repo-invariant analyzer suite over the
// module. It is the mechanical half of the contracts docs/LINTING.md
// describes: every finding is printed as
//
//	file:line:col: [rule] message
//
// and any finding makes the exit status 1 (2 for load/usage errors), so CI
// can gate merges on `go run ./cmd/graphitti-lint ./...`.
//
// Rules are selected with -enable (exclusive allowlist) and -disable
// (subtractive); -list prints the registry; -json emits findings as a JSON
// array for tooling. A false positive is suppressed in source with
//
//	//lint:ignore rule reason
//
// on, or on the line above, the offending line — the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphitti/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("graphitti-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		enable  = fs.String("enable", "", "comma-separated rules to run (exclusive allowlist; default: all default-on rules)")
		disable = fs.String("disable", "", "comma-separated rules to skip")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		list    = fs.Bool("list", false, "list registered rules and exit")
		dir     = fs.String("C", "", "change to this directory before resolving patterns")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graphitti-lint [flags] [packages]\n\nRuns graphitti's repo-invariant analyzers (see docs/LINTING.md).\nDefault package pattern: ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			def := "on"
			if !a.Default {
				def = "off"
			}
			fmt.Fprintf(stdout, "%-12s %-3s %s\n", a.Name, def, a.Doc)
		}
		return 0
	}
	sel, err := lint.Selection(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := lint.RunAll(pkgs, sel)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "graphitti-lint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
