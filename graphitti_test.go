package graphitti

import (
	"strings"
	"testing"

	"graphitti/internal/workload"
)

func TestQuickstartFlow(t *testing.T) {
	s := New()
	d, err := NewDNA("NC_007362", strings.Repeat("ACGT", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSequence(d); err != nil {
		t.Fatal(err)
	}
	ann, err := MarkAndAnnotate(s, "NC_007362", Span(100, 240),
		"gupta", "2007-11-02", "protease cleavage site here")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchContents("contains(/annotation/body, 'protease')")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != ann.ID {
		t.Fatalf("search = %v", got)
	}
	hits := s.ReferentsAt(d.Domain, 150)
	if len(hits) != 1 {
		t.Fatalf("stab = %v", hits)
	}
}

// TestQ1AgainstGroundTruth runs the paper's intro query on the synthetic
// neuroscience study and checks the planted answers come back exactly.
func TestQ1AgainstGroundTruth(t *testing.T) {
	study, err := workload.Neuroscience(workload.DefaultNeuro)
	if err != nil {
		t.Fatal(err)
	}
	res, err := QueryTP53Images(study.Store, TP53Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QualifyingImages) != len(study.QualifyingImages) {
		t.Fatalf("qualifying images = %v, want %v", res.QualifyingImages, study.QualifyingImages)
	}
	for i, img := range study.QualifyingImages {
		if res.QualifyingImages[i] != img {
			t.Fatalf("qualifying images = %v, want %v", res.QualifyingImages, study.QualifyingImages)
		}
	}
	if len(res.Annotations) != len(study.TP53Annotations) {
		t.Fatalf("answers = %d, want %d", len(res.Annotations), len(study.TP53Annotations))
	}
	want := make(map[uint64]bool)
	for _, id := range study.TP53Annotations {
		want[id] = true
	}
	for _, ann := range res.Annotations {
		if !want[ann.ID] {
			t.Fatalf("unexpected answer %d", ann.ID)
		}
	}
	// Region counts are populated for every image.
	if len(res.RegionCounts) != len(study.ImageIDs) {
		t.Fatalf("region counts = %d images", len(res.RegionCounts))
	}
	// Unknown ontology errors.
	if _, err := QueryTP53Images(study.Store, TP53Options{Ontology: "ghost"}); err == nil {
		t.Fatal("ghost ontology accepted")
	}
	if _, err := QueryTP53Images(study.Store, TP53Options{TermName: "No Such Term"}); err == nil {
		t.Fatal("ghost term accepted")
	}
	// With an unreachable region threshold no image qualifies, and "paths
	// to all qualifying images" is vacuously true: every keyword
	// candidate answers.
	vac, err := QueryTP53Images(study.Store, TP53Options{MinRegions: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(vac.QualifyingImages) != 0 {
		t.Fatalf("qualifying images = %v, want none", vac.QualifyingImages)
	}
	if len(vac.Annotations) != len(study.TP53Annotations) {
		t.Fatalf("vacuous join answers = %d, want all %d keyword candidates",
			len(vac.Annotations), len(study.TP53Annotations))
	}
}

// TestQ2AgainstGroundTruth runs the query-tab query on the influenza study
// and checks every planted chain is found.
func TestQ2AgainstGroundTruth(t *testing.T) {
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 100
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := QueryConsecutiveKeyword(study.Store, ConsecutiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < cfg.ProteaseChains {
		t.Fatalf("chains = %d, want >= %d planted", len(chains), cfg.ProteaseChains)
	}
	foundSegments := make(map[string]bool)
	for _, c := range chains {
		if len(c.Referents) != 4 {
			t.Fatalf("chain length = %d", len(c.Referents))
		}
		// Verify consecutiveness and disjointness.
		for i := 1; i < len(c.Referents); i++ {
			if c.Referents[i-1].Interval.Hi > c.Referents[i].Interval.Lo {
				t.Fatalf("chain not disjoint/ordered: %v then %v",
					c.Referents[i-1].Interval, c.Referents[i].Interval)
			}
		}
		// Every link's witness annotation carries the keyword.
		for _, ann := range c.Annotations {
			found := false
			for _, w := range ann.Content.Keywords() {
				if w == "protease" {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("witness annotation lacks the keyword")
			}
		}
		if len(c.Sequences) == 0 {
			t.Fatal("chain has no owning sequences")
		}
		foundSegments[c.Domain] = true
	}
	for _, seg := range study.ChainSegments {
		if !foundSegments[seg] {
			t.Fatalf("planted chain on %s not found", seg)
		}
	}
	// Class-restricted variant still finds the planted chains (they are
	// tagged serine-protease, under hydrolase).
	chains, err = QueryConsecutiveKeyword(study.Store, ConsecutiveOptions{
		Ontology: "go", ClassTerm: "hydrolase",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < cfg.ProteaseChains {
		t.Fatalf("class-restricted chains = %d", len(chains))
	}
	// A class that excludes them returns none.
	chains, err = QueryConsecutiveKeyword(study.Store, ConsecutiveOptions{
		Ontology: "go", ClassTerm: "kinase",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 0 {
		t.Fatalf("kinase-class chains = %d, want 0", len(chains))
	}
}

// TestFig1Scenario reproduces the paper's Figure 1: an interdisciplinary
// a-graph where annotations by different scientists become indirectly
// related through shared referents, and connect() recovers the scenario's
// connection structure.
func TestFig1Scenario(t *testing.T) {
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 60
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := study.Store

	// Two scientists annotate the same interval: shared referent.
	m1, err := s.MarkDomainInterval("segment1", Span(100, 180))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := s.Commit(s.NewAnnotation().Creator("gupta").Date("2007-11-01").
		Title("observation A").Body("reassortment breakpoint?").Refer(m1))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.MarkDomainInterval("segment1", Span(100, 180))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Commit(s.NewAnnotation().Creator("martone").Date("2007-11-03").
		Title("observation B").Body("agrees with A, plus host shift").Refer(m2))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := s.RelatedAnnotations(a1.ID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rel {
		if r.ID == a2.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("indirect relation through shared referent not discovered")
	}
	// connect() over three annotations on the same study.
	ids := study.AnnotationIDs[:2]
	sg, err := s.ConnectAnnotations(append(ids, a1.ID)...)
	if err == nil {
		if !sg.Connected() {
			t.Fatal("connect returned a disconnected subgraph")
		}
	}
	// Correlated data view on a1 includes the marked object.
	items, err := s.CorrelatedData(a1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("correlated data empty")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := NewRNA("r", "ACGU"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProtein("p", "MKV"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAlignment("a", []string{"x"}, []string{"AC-G"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNewick("t", "(a,b);"); err != nil {
		t.Fatal(err)
	}
	if NewInteractionGraph("g") == nil {
		t.Fatal("nil interaction graph")
	}
	if NewOntology("o") == nil {
		t.Fatal("nil ontology")
	}
	if _, err := NewCoordinateSystem("cs", Rect2D(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewImage("i", "cs", Rect2D(0, 0, 1, 1), IdentityRegistration(2)); err != nil {
		t.Fatal(err)
	}
	if Span(1, 5).Len() != 4 {
		t.Fatal("Span wrong")
	}
	if Rect3D(0, 0, 0, 1, 1, 1).Volume() != 1 {
		t.Fatal("Rect3D wrong")
	}
}

func TestQueryLanguageThroughFacade(t *testing.T) {
	cfg := workload.DefaultInfluenza
	cfg.Annotations = 40
	study, err := workload.Influenza(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcessor(study.Store)
	res, err := p.Execute(`
select contents
where {
  ?a isa annotation ; contains "protease" .
  ?t isa term ; ontology "go" ; under "protease" .
  ?a refersTo ?t .
}`, DefaultQueryOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) < cfg.ProteaseChains*4 {
		t.Fatalf("query found %d annotations", len(res.Annotations))
	}
}
